#ifndef CSJ_DATA_GENERATORS_H_
#define CSJ_DATA_GENERATORS_H_

#include <algorithm>
#include <vector>

#include "geom/point.h"
#include "util/random.h"

/// \file
/// Synthetic point-set generators.
///
/// The Sierpinski generators reproduce the paper's Sierpinski3D workload (a
/// 3-D Sierpinski pyramid sampled by the chaos game); uniform and
/// Gaussian-cluster generators drive tests and the EGO extension benchmarks.
/// All generators are deterministic in (parameters, seed).

namespace csj {

/// n uniform points in the unit cube.
template <int D>
std::vector<Point<D>> GenerateUniform(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point<D>> points(n);
  for (auto& p : points) {
    for (int d = 0; d < D; ++d) p[d] = rng.UniformDouble();
  }
  return points;
}

/// n points from k Gaussian clusters with the given per-axis sigma; cluster
/// centers are uniform in the unit cube, points are clamped into it.
template <int D>
std::vector<Point<D>> GenerateGaussianClusters(size_t n, int k, double sigma,
                                               uint64_t seed) {
  CSJ_CHECK(k >= 1);
  Rng rng(seed);
  std::vector<Point<D>> centers(static_cast<size_t>(k));
  for (auto& c : centers) {
    for (int d = 0; d < D; ++d) c[d] = rng.UniformDouble();
  }
  std::vector<Point<D>> points(n);
  for (auto& p : points) {
    const auto& c = centers[rng.UniformInt(static_cast<uint64_t>(k))];
    for (int d = 0; d < D; ++d) {
      double v = c[d] + rng.Gaussian(0.0, sigma);
      if (v < 0.0) v = 0.0;
      if (v > 1.0) v = 1.0;
      p[d] = v;
    }
  }
  return points;
}

namespace generators_internal {

/// Chaos-game sampling of the Sierpinski simplex with V vertices in D
/// dimensions: iteratively jump halfway toward a random vertex. The attractor
/// is the Sierpinski triangle (D=2, V=3) or pyramid (D=3, V=4).
template <int D, int V>
std::vector<Point<D>> ChaosGame(const Point<D> (&vertices)[V], size_t n,
                                uint64_t seed) {
  Rng rng(seed);
  std::vector<Point<D>> points;
  points.reserve(n);
  Point<D> current;
  for (int d = 0; d < D; ++d) current[d] = rng.UniformDouble();
  // Discard burn-in iterations so every kept point is (numerically) on the
  // attractor.
  constexpr int kBurnIn = 32;
  for (size_t i = 0; i < n + kBurnIn; ++i) {
    const auto& v = vertices[rng.UniformInt(static_cast<uint64_t>(V))];
    for (int d = 0; d < D; ++d) current[d] = 0.5 * (current[d] + v[d]);
    if (i >= kBurnIn) points.push_back(current);
  }
  return points;
}

}  // namespace generators_internal

/// n points on the 2-D Sierpinski triangle inside the unit square.
inline std::vector<Point2> GenerateSierpinski2D(size_t n, uint64_t seed) {
  static constexpr Point2 kVertices[3] = {
      Point2{{0.0, 0.0}}, Point2{{1.0, 0.0}}, Point2{{0.5, 1.0}}};
  return generators_internal::ChaosGame<2, 3>(kVertices, n, seed);
}

/// n points on the 3-D Sierpinski pyramid (tetrahedron) inside the unit
/// cube — the paper's Sierpinski3D data set.
inline std::vector<Point3> GenerateSierpinski3D(size_t n, uint64_t seed) {
  static constexpr Point3 kVertices[4] = {
      Point3{{0.0, 0.0, 0.0}}, Point3{{1.0, 0.0, 0.0}},
      Point3{{0.5, 1.0, 0.0}}, Point3{{0.5, 0.5, 1.0}}};
  return generators_internal::ChaosGame<3, 4>(kVertices, n, seed);
}

/// Parameters of the Soneira-Peebles hierarchical clustering model — the
/// classic synthetic galaxy catalog (the paper's astrophysics motivation).
/// Starting from one sphere of radius `top_radius`, each level places `eta`
/// child spheres at uniform positions inside the parent with radius shrunk
/// by `lambda`; galaxies are the centers of the last level. The resulting
/// point set has a power-law correlation function with fractal dimension
/// approximately log(eta) / log(lambda).
struct SoneiraPeeblesOptions {
  int levels = 6;
  int eta = 4;          ///< children per sphere
  double lambda = 2.2;  ///< radius shrink factor per level (> 1)
  double top_radius = 0.45;
  size_t num_points = 0;  ///< 0 = natural count (eta^levels); else resampled
  uint64_t seed = 19;
};

/// Soneira-Peebles hierarchical galaxy catalog in the unit square/cube.
template <int D>
std::vector<Point<D>> GenerateSoneiraPeebles(
    const SoneiraPeeblesOptions& options) {
  CSJ_CHECK(options.levels >= 1 && options.eta >= 1);
  CSJ_CHECK(options.lambda > 1.0);
  Rng rng(options.seed);

  Point<D> center;
  for (int d = 0; d < D; ++d) center[d] = 0.5;
  std::vector<Point<D>> current = {center};
  double radius = options.top_radius;

  auto sample_in_ball = [&](const Point<D>& c, double r) {
    // Rejection sampling inside the D-ball.
    while (true) {
      Point<D> p;
      double norm2 = 0.0;
      for (int d = 0; d < D; ++d) {
        const double v = rng.UniformDouble(-1.0, 1.0);
        p[d] = v;
        norm2 += v * v;
      }
      if (norm2 > 1.0) continue;
      for (int d = 0; d < D; ++d) {
        p[d] = std::clamp(c[d] + p[d] * r, 0.0, 1.0);
      }
      return p;
    }
  };

  for (int level = 0; level < options.levels; ++level) {
    radius /= options.lambda;
    std::vector<Point<D>> next;
    next.reserve(current.size() * static_cast<size_t>(options.eta));
    for (const auto& c : current) {
      for (int k = 0; k < options.eta; ++k) {
        next.push_back(sample_in_ball(c, radius * options.lambda));
      }
    }
    current = std::move(next);
  }

  if (options.num_points == 0 || options.num_points == current.size()) {
    return current;
  }
  // Resample to the requested count: subsample, or densify by jittering
  // existing galaxies within the smallest-level radius.
  std::vector<Point<D>> out;
  out.reserve(options.num_points);
  if (options.num_points < current.size()) {
    rng.Shuffle(current);
    out.assign(current.begin(),
               current.begin() + static_cast<long>(options.num_points));
  } else {
    out = current;
    while (out.size() < options.num_points) {
      const auto& base = current[rng.UniformInt(current.size())];
      out.push_back(sample_in_ball(base, radius));
    }
  }
  return out;
}

}  // namespace csj

#endif  // CSJ_DATA_GENERATORS_H_

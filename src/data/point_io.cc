#include "data/point_io.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/format.h"

namespace csj::io_internal {

Status WritePointsText(const std::string& path,
                       const std::vector<std::vector<double>>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IoError("cannot open for write: " + path);
  for (const auto& row : rows) {
    for (size_t d = 0; d < row.size(); ++d) {
      std::fprintf(f, d + 1 == row.size() ? "%.17g\n" : "%.17g ", row[d]);
    }
  }
  if (std::fclose(f) != 0) return Status::IoError("close failed: " + path);
  return Status::OK();
}

Result<std::vector<std::vector<double>>> ReadPointsText(
    const std::string& path, int expected_dims) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::NotFound("cannot open: " + path);
  std::vector<std::vector<double>> rows;
  char line[512];
  int line_no = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    ++line_no;
    // Skip blank and comment lines.
    char* cursor = line;
    while (*cursor == ' ' || *cursor == '\t') ++cursor;
    if (*cursor == '\0' || *cursor == '\n' || *cursor == '#') continue;

    std::vector<double> row;
    while (true) {
      char* end = nullptr;
      const double value = std::strtod(cursor, &end);
      if (end == cursor) break;
      row.push_back(value);
      cursor = end;
    }
    if (static_cast<int>(row.size()) != expected_dims) {
      std::fclose(f);
      return Status::InvalidArgument(
          StrFormat("%s:%d: expected %d columns, found %zu", path.c_str(),
                    line_no, expected_dims, row.size()));
    }
    rows.push_back(std::move(row));
  }
  std::fclose(f);
  return rows;
}

}  // namespace csj::io_internal

#include "data/point_io.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/failpoint.h"
#include "util/format.h"

namespace csj::io_internal {

Status WritePointsText(const std::string& path,
                       const std::vector<std::vector<double>>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IoError("cannot open for write: " + path);
  for (const auto& row : rows) {
    for (size_t d = 0; d < row.size(); ++d) {
      std::fprintf(f, d + 1 == row.size() ? "%.17g\n" : "%.17g ", row[d]);
    }
  }
  if (std::ferror(f) != 0) {
    std::fclose(f);
    std::remove(path.c_str());
    return Status::IoError("write failed: " + path);
  }
  if (std::fclose(f) != 0) {
    std::remove(path.c_str());
    return Status::IoError("close failed: " + path);
  }
  return Status::OK();
}

Result<std::vector<std::vector<double>>> ReadPointsText(
    const std::string& path, int expected_dims) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::NotFound("cannot open: " + path);
  std::vector<std::vector<double>> rows;
  char line[512];
  int line_no = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    ++line_no;
    if (CSJ_FAILPOINT("point_io.read")) {
      std::fclose(f);
      return Status::IoError(
          StrFormat("%s:%d: injected read fault", path.c_str(), line_no));
    }
    // A full buffer with no newline means the line kept going: reject it
    // rather than silently splitting one point across two parses. (The last
    // line of the file may legitimately lack a newline.)
    if (std::strchr(line, '\n') == nullptr && !std::feof(f)) {
      std::fclose(f);
      return Status::InvalidArgument(
          StrFormat("%s:%d: line exceeds %zu bytes", path.c_str(), line_no,
                    sizeof(line) - 1));
    }
    // Skip blank and comment lines.
    char* cursor = line;
    while (*cursor == ' ' || *cursor == '\t') ++cursor;
    if (*cursor == '\0' || *cursor == '\n' || *cursor == '\r' ||
        *cursor == '#') {
      continue;
    }

    std::vector<double> row;
    while (true) {
      char* end = nullptr;
      errno = 0;
      const double value = std::strtod(cursor, &end);
      if (end == cursor) break;
      // Coordinates must be finite: "nan"/"inf" literals and values whose
      // magnitude overflows a double (strtod returns ±HUGE_VAL with ERANGE)
      // would poison every distance computed from them. Underflow to zero
      // (e.g. 1e-400) is harmless and accepted.
      if (!std::isfinite(value)) {
        std::fclose(f);
        return Status::InvalidArgument(StrFormat(
            "%s:%d: column %zu is %s — coordinates must be finite",
            path.c_str(), line_no, row.size() + 1,
            std::isnan(value) ? "NaN"
                              : (errno == ERANGE
                                     ? "out of range for a double"
                                     : "infinite")));
      }
      row.push_back(value);
      cursor = end;
    }
    // Anything left that is not whitespace or a trailing comment is a token
    // strtod could not consume — report it instead of silently dropping it.
    while (*cursor == ' ' || *cursor == '\t') ++cursor;
    if (*cursor != '\0' && *cursor != '\n' && *cursor != '\r' &&
        *cursor != '#') {
      std::fclose(f);
      size_t token_len = 0;
      while (token_len < 12 && cursor[token_len] != '\0' &&
             cursor[token_len] != '\n' && cursor[token_len] != '\r') {
        ++token_len;
      }
      return Status::InvalidArgument(
          StrFormat("%s:%d: non-numeric token starting at '%.*s'",
                    path.c_str(), line_no, static_cast<int>(token_len),
                    cursor));
    }
    if (static_cast<int>(row.size()) != expected_dims) {
      std::fclose(f);
      return Status::InvalidArgument(
          StrFormat("%s:%d: expected %d columns, found %zu", path.c_str(),
                    line_no, expected_dims, row.size()));
    }
    rows.push_back(std::move(row));
  }
  if (std::ferror(f) != 0) {
    std::fclose(f);
    return Status::IoError("read failed: " + path);
  }
  std::fclose(f);
  if (rows.empty()) {
    return Status::InvalidArgument("no points in " + path);
  }
  return rows;
}

}  // namespace csj::io_internal

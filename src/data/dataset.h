#ifndef CSJ_DATA_DATASET_H_
#define CSJ_DATA_DATASET_H_

#include <algorithm>
#include <string>
#include <vector>

#include "geom/box.h"
#include "geom/point.h"
#include "util/check.h"

/// \file
/// Datasets: named point collections with ids, plus the unit-square
/// normalization the paper applies to every input ("All data sets were
/// normalized to fit into the unit square").

namespace csj {

/// A named, id-stamped point set.
template <int D>
struct Dataset {
  std::string name;
  std::vector<Entry<D>> entries;

  size_t size() const { return entries.size(); }
};

/// Stamps consecutive ids starting at `first_id` onto points.
template <int D>
std::vector<Entry<D>> ToEntries(const std::vector<Point<D>>& points,
                                PointId first_id = 0) {
  std::vector<Entry<D>> entries(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    entries[i] = Entry<D>{static_cast<PointId>(first_id + i), points[i]};
  }
  return entries;
}

/// Extracts the bare points of a dataset (for brute-force checks).
template <int D>
std::vector<Point<D>> ToPoints(const std::vector<Entry<D>>& entries) {
  std::vector<Point<D>> points(entries.size());
  for (size_t i = 0; i < entries.size(); ++i) points[i] = entries[i].point;
  return points;
}

/// Rescales points into the unit cube [0,1]^D.
///
/// \param preserve_aspect when true (default), all axes are scaled by the
///        single factor that makes the largest extent 1, keeping shapes
///        undistorted (distances in all axes stay comparable); when false,
///        each axis is stretched to [0,1] independently.
template <int D>
void NormalizeToUnitCube(std::vector<Point<D>>* points,
                         bool preserve_aspect = true) {
  if (points->empty()) return;
  Box<D> bounds;
  for (const auto& p : *points) bounds.Extend(p);

  double scales[D];
  if (preserve_aspect) {
    double max_extent = 0.0;
    for (int d = 0; d < D; ++d) max_extent = std::max(max_extent, bounds.Extent(d));
    const double s = max_extent > 0.0 ? 1.0 / max_extent : 1.0;
    for (int d = 0; d < D; ++d) scales[d] = s;
  } else {
    for (int d = 0; d < D; ++d) {
      const double extent = bounds.Extent(d);
      scales[d] = extent > 0.0 ? 1.0 / extent : 1.0;
    }
  }
  for (auto& p : *points) {
    for (int d = 0; d < D; ++d) p[d] = (p[d] - bounds.lo[d]) * scales[d];
  }
}

/// Entry-vector overload.
template <int D>
void NormalizeToUnitCube(std::vector<Entry<D>>* entries,
                         bool preserve_aspect = true) {
  if (entries->empty()) return;
  std::vector<Point<D>> points = ToPoints(*entries);
  NormalizeToUnitCube(&points, preserve_aspect);
  for (size_t i = 0; i < entries->size(); ++i) (*entries)[i].point = points[i];
}

}  // namespace csj

#endif  // CSJ_DATA_DATASET_H_

#ifndef CSJ_DATA_ROADNET_H_
#define CSJ_DATA_ROADNET_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "geom/point.h"

/// \file
/// Synthetic road-network point sets.
///
/// The paper's three real data sets (Montgomery County 27K, Long Beach
/// County 36K, Pacific-NW TIGER road endpoints 1.5M) are not available
/// offline, so we substitute a seeded generator that reproduces their
/// statistical character: points that are endpoints/vertices of road
/// segments — i.e. they lie on a hierarchical network of 1-D curves
/// (highways, arterials, local streets) with strong urban clustering and
/// wildly non-uniform density. DESIGN.md documents this substitution.

namespace csj {

/// Road-network generator parameters.
struct RoadNetOptions {
  size_t num_points = 27000;
  uint64_t seed = 27;

  int num_cities = 10;         ///< urban centers (highway endpoints)
  int highway_links = 2;       ///< highways per city to nearest neighbors
  int subdivision_depth = 6;   ///< midpoint-displacement depth per segment
  double displacement = 0.12;  ///< relative perpendicular jitter per split
  double urban_fraction = 0.4; ///< share of points in dense street grids
  double urban_sigma = 0.035;  ///< spatial spread of a city's street grid
  int arterials_per_city = 14; ///< mid-level roads radiating from centers
};

/// Generates a road-like 2-D point set in the unit square.
std::vector<Point2> GenerateRoadNetwork(const RoadNetOptions& options);

/// The paper's data-set stand-ins (fixed seeds and sizes; normalized to the
/// unit square):
///   MG County  — 27K points   (seed 27)
///   LB County  — 36K points   (seed 36)
///   Pacific NW — 1.5M points  (seed 1015); `scale` shrinks it for quick runs
Dataset<2> MakeMgCounty();
Dataset<2> MakeLbCounty();
Dataset<2> MakePacificNw(double scale = 1.0);

/// The paper's synthetic workload: 100K (default) chaos-game points on a 3-D
/// Sierpinski pyramid.
Dataset<3> MakeSierpinski3DDataset(size_t n = 100000);

}  // namespace csj

#endif  // CSJ_DATA_ROADNET_H_

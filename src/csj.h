#ifndef CSJ_CSJ_H_
#define CSJ_CSJ_H_

/// \file
/// Umbrella header: the full public API of the compact-similarity-join
/// library. Include this to get everything; include the individual headers
/// to keep compile times down.
///
///   #include "csj.h"
///
///   csj::RStarTree<2> tree;
///   for (auto& [id, p] : data) tree.Insert(id, p);
///
///   csj::JoinOptions options;
///   options.epsilon = 0.05;
///   csj::CountingSink sink(csj::IdWidthFor(n));
///   csj::JoinStats stats = csj::CompactSimilarityJoin(tree, options, &sink);

#include "analysis/epsilon.h"
#include "analysis/fractal.h"
#include "core/brute.h"
#include "core/checkpoint_join.h"
#include "core/ego.h"
#include "core/expand.h"
#include "core/group.h"
#include "core/join_options.h"
#include "core/parallel_join.h"
#include "core/output_reader.h"
#include "core/output_stats.h"
#include "core/join_stats.h"
#include "core/query_spec.h"
#include "core/result_cursor.h"
#include "core/similarity_join.h"
#include "core/sink.h"
#include "data/dataset.h"
#include "data/generators.h"
#include "data/point_io.h"
#include "data/roadnet.h"
#include "geom/ball.h"
#include "geom/box.h"
#include "geom/hilbert.h"
#include "geom/point.h"
#include "index/bulk_load.h"
#include "index/mtree.h"
#include "index/node_access.h"
#include "index/paged_tree.h"
#include "index/rstar_tree.h"
#include "index/rtree.h"
#include "index/spatial_index.h"
#include "index/tree_io.h"
#include "metric/edit_distance.h"
#include "metric/generic_mtree.h"
#include "metric/metric_join.h"
#include "plan/estimator.h"
#include "plan/planner.h"
#include "storage/binary_format.h"
#include "storage/block_writer.h"
#include "storage/buffer_pool.h"
#include "storage/checkpoint.h"
#include "storage/output_file.h"
#include "util/exec_context.h"
#include "util/format.h"
#include "util/json.h"
#include "util/metrics.h"
#include "util/random.h"
#include "util/status.h"
#include "util/table.h"
#include "util/timer.h"

#endif  // CSJ_CSJ_H_

#ifndef CSJ_PLAN_ESTIMATOR_H_
#define CSJ_PLAN_ESTIMATOR_H_

#include <array>
#include <cstdint>
#include <vector>

#include "analysis/fractal.h"
#include "geom/point.h"
#include "util/json.h"

/// \file
/// Dataset sketches and output-size estimation for the query planner.
///
/// The planner's inputs are cheap, query-independent *sketches* of a
/// dataset, built once (at index load in csj_serve, per invocation in
/// csj_tool / bench):
///
///  * a deterministic uniform sample of the points (seeded partial
///    Fisher-Yates), kept in the sketch so eps-specific questions can be
///    answered later by direct probes;
///  * per-dimension bounds, spread and standard deviation;
///  * an LSH collision-count ladder: same-cell pair counts over a ladder of
///    grid widths (grid cells are the classic L2 LSH buckets), fitted to a
///    power law — the join-size estimator of Lee/Ng/Shim-style LSH sketches;
///  * the fractal correlation dimension D2 fitted over the sample
///    (analysis/fractal.h): links(eps) ~ C * eps^D2 on self-similar data.
///
/// `EstimateOutput` then predicts, for a concrete (dataset, eps): the link
/// count, the group structure CSJ can exploit (count / member total /
/// covered links via an eps/sqrt(2) grid whose cells are guaranteed
/// mergeable groups), the byte cost of the SSJ and CSJ outputs, the
/// compression ratio between them, and a leaf-visit work proxy. The primary
/// link estimator is an exact neighbor probe over the retained sample
/// (scaled by the sampling fraction); when eps is below the sample's
/// resolution (too few sampled pairs to trust), it falls back to the D2
/// power law, and failing that the collision-ladder fit. Predictions are
/// deterministic for a fixed seed.
///
/// Everything here is 2-D (Point2), matching csj_tool and csj_serve; the
/// underlying analysis layer is dimension-generic.

namespace csj::plan {

/// Sketch-building knobs. Defaults are cheap enough for index load time.
struct SketchOptions {
  size_t sample_size = 4096;  ///< retained sample cap
  uint64_t seed = 17;         ///< sampling seed (determinism)
  int ladder_min_exp = -9;    ///< collision ladder: widths 2^min .. 2^max
  int ladder_max_exp = -2;
};

/// One rung of the collision-count ladder: same-cell pairs among the
/// *sample* at the given grid width.
struct CollisionPoint {
  double width = 0.0;
  uint64_t pairs = 0;
};

/// Query-independent dataset sketch.
struct DatasetSketch {
  uint64_t num_points = 0;
  size_t sample_size = 0;
  double sample_fraction = 1.0;  ///< sample_size / num_points

  std::array<double, 2> min_coord = {0.0, 0.0};
  std::array<double, 2> max_coord = {0.0, 0.0};
  std::array<double, 2> spread = {0.0, 0.0};
  std::array<double, 2> stddev = {0.0, 0.0};

  /// Correlation-dimension fit over the sample; valid when d2_points >= 2.
  PowerLawFit d2;
  size_t d2_points = 0;

  /// Collision-count ladder and its power-law fit (over non-empty rungs).
  std::vector<CollisionPoint> collisions;
  PowerLawFit collision_fit;
  size_t collision_points = 0;

  /// The retained sample, for eps-specific probes.
  std::vector<Point2> sample;

  /// Everything except the raw sample (for explain output / reports).
  json::Value ToJsonValue() const;
};

/// Builds a sketch over an in-memory point set. Deterministic in
/// (points, options).
DatasetSketch BuildSketch(const std::vector<Point2>& points,
                          const SketchOptions& options = {});

/// Builds a sketch from an externally drawn sample of a dataset with
/// `num_points` total points (csj_serve samples from the paged tree without
/// materializing the dataset). The sample is assumed uniform.
DatasetSketch BuildSketchFromSample(std::vector<Point2> sample,
                                    uint64_t num_points,
                                    const SketchOptions& options = {});

/// Predicted output shape and work for one (dataset, eps).
struct OutputEstimate {
  double eps = 0.0;

  uint64_t links = 0;  ///< total qualifying pairs (SSJ-equivalent)
  double avg_neighbors = 0.0;  ///< expected within-eps neighbors per point

  /// Predicted group structure: cells of side eps/sqrt(2) with expected
  /// occupancy >= 2 are guaranteed-mergeable groups.
  uint64_t groups = 0;
  uint64_t group_member_total = 0;
  uint64_t grouped_links = 0;   ///< links covered by the predicted groups
  uint64_t residual_links = 0;  ///< links CSJ would still emit individually

  uint64_t ssj_bytes = 0;  ///< text bytes of the plain link listing
  uint64_t csj_bytes = 0;  ///< text bytes of groups + residual links
  double compression = 1.0;  ///< ssj_bytes / csj_bytes (>= 1 when groups help)

  /// Leaf-work proxy: expected candidate pairs the leaf kernels evaluate
  /// (neighbors within ~3 eps, the MBR slop of the tree traversal).
  double leaf_work = 0.0;

  /// True when the link estimate came from a power-law extrapolation
  /// instead of the direct sample probe (eps below sample resolution).
  bool from_power_law = false;

  json::Value ToJsonValue() const;
};

/// Predicts the output at `eps`. `id_width` is the zero-padding width of the
/// text format (IdWidthFor(n)), which prices the byte predictions.
OutputEstimate EstimateOutput(const DatasetSketch& sketch, double eps,
                              int id_width);

}  // namespace csj::plan

#endif  // CSJ_PLAN_ESTIMATOR_H_

#ifndef CSJ_PLAN_PLANNER_H_
#define CSJ_PLAN_PLANNER_H_

#include <string>
#include <vector>

#include "core/ego.h"
#include "core/join_options.h"
#include "core/join_stats.h"
#include "core/query_spec.h"
#include "plan/estimator.h"
#include "util/json.h"

/// \file
/// The cost-based query planner: QuerySpec -> QueryPlan -> derived
/// execution structs.
///
/// `PlanQuery` resolves a spec against a dataset sketch. An explicit spec
/// passes through untouched (the planner only prices it); `algo=auto` makes
/// the planner choose the algorithm, merge window, leaf kernel, batch depth
/// and serial-vs-parallel execution, recording a rationale per decision so
/// `csj_tool plan` / the serve trailer can explain themselves.
///
/// Policy (docs/PLANNING.md has the full derivation):
///  * SSJ when the predicted compression ratio is below 1.2x — groups that
///    do not pay for their window upkeep are pure overhead;
///  * otherwise CSJ(g), with g picked by predicted neighborhood density
///    (the paper's sweet spot g=10 in the middle band);
///  * SIMD leaf kernels once leaves are dense enough to fill vector lanes,
///    plane-sweep otherwise — output-identical either way;
///  * parallel (checkpointed) execution only when the predicted leaf work
///    dwarfs the per-run setup cost; serving always runs queries serial.
///
/// `DeriveJoinOptions` / `DeriveEgoOptions` are the *only* spec-to-options
/// mapping in the system: a 1:1 field copy, so explicitly specified
/// configurations execute byte-identically to the historical flag plumbing.

namespace csj::plan {

/// One explained planner decision.
struct PlanDecision {
  std::string knob;       ///< e.g. "algo", "g", "leaf_kernel"
  std::string choice;     ///< rendered chosen value
  std::string rationale;  ///< one sentence of why
};

/// A resolved, explainable plan.
struct QueryPlan {
  /// The input spec with every auto knob filled in. `resolved.algo` is
  /// never kAuto.
  QuerySpec resolved;

  /// Predictions at the requested eps (estimator.h).
  OutputEstimate estimate;

  /// Sketch facts worth echoing (dimension estimate, sample size).
  double d2 = 0.0;
  uint64_t num_points = 0;

  std::vector<PlanDecision> decisions;

  /// {"knobs": {algo,g,leaf_kernel,leaf_batch,threads},
  ///  "predicted": OutputEstimate, "decisions": [...], ...}. Deterministic
  /// (sorted keys), used verbatim as JoinStats::plan_json.
  json::Value ToJsonValue() const;

  /// Human-readable explain rendering (csj_tool plan).
  std::string ToText() const;
};

/// Resolves `spec` against `sketch`. `id_width` prices the byte
/// predictions (IdWidthFor(n)). Works for any spec; only kAuto specs have
/// knobs chosen for them.
QueryPlan PlanQuery(const QuerySpec& spec, const DatasetSketch& sketch,
                    int id_width);

/// The spec -> JoinOptions field mapping (tree algorithms). Callers attach
/// exec/tracker afterwards; `deadline_ms` is copied and may be overridden
/// by serving-side clamps.
JoinOptions DeriveJoinOptions(const QuerySpec& spec);

/// The spec -> EgoOptions field mapping (ego/cego).
EgoOptions DeriveEgoOptions(const QuerySpec& spec);

/// Stamps the plan's predictions into a finished run's stats
/// (predicted_links / predicted_groups / plan_json).
void AttachPlan(const QueryPlan& plan, JoinStats* stats);

/// Records plan.* estimator-accuracy metrics for a finished planned run
/// (no-op when `stats` carries no plan). Actual link counts use
/// ImpliedLinkUpperBound so compact outputs compare on equal terms.
void RecordPlanAccuracy(const JoinStats& stats);

}  // namespace csj::plan

#endif  // CSJ_PLAN_PLANNER_H_

#include "plan/planner.h"

#include <algorithm>
#include <cmath>

#include "util/format.h"
#include "util/metrics.h"

namespace csj::plan {

namespace {

/// Below this predicted SSJ-bytes / CSJ-bytes ratio, the merge window's
/// upkeep outweighs the output it saves and the planner picks SSJ.
constexpr double kMinCompression = 1.2;

/// Predicted average within-eps neighbors per point at which leaves are
/// dense enough for the SIMD backends to beat plane sweep alone. Sweep's
/// sort-based pruning discards most candidates before any distance math,
/// so the batched SIMD lanes only break even once neighborhoods are far
/// wider than the lane width (bench_planner: parity near ~300 average
/// neighbors, a clear sweep win at ~25).
constexpr double kSimdDensity = 100.0;

/// Predicted leaf-work (candidate pairs) above which parallel checkpointed
/// execution amortizes its task-decomposition and replay overhead.
constexpr double kParallelWork = 2.0e8;

void RecordPick(QueryAlgo algo) {
  switch (algo) {
    case QueryAlgo::kSSJ:
      CSJ_METRIC_COUNT("plan.picks.ssj", 1);
      break;
    case QueryAlgo::kNCSJ:
      CSJ_METRIC_COUNT("plan.picks.ncsj", 1);
      break;
    default:
      CSJ_METRIC_COUNT("plan.picks.csj", 1);
      break;
  }
}

}  // namespace

json::Value QueryPlan::ToJsonValue() const {
  json::Value v = json::Object{};
  json::Value knobs = json::Object{};
  knobs["algo"] = QueryAlgoName(resolved.algo);
  knobs["g"] = static_cast<int64_t>(resolved.window);
  knobs["leaf_kernel"] = LeafKernelName(resolved.leaf_kernel);
  knobs["leaf_batch"] = static_cast<uint64_t>(resolved.leaf_batch);
  knobs["threads"] = static_cast<int64_t>(resolved.threads);
  v["knobs"] = std::move(knobs);
  v["predicted"] = estimate.ToJsonValue();
  json::Value ds = json::Array{};
  for (const auto& d : decisions) {
    json::Value entry = json::Object{};
    entry["knob"] = d.knob;
    entry["choice"] = d.choice;
    entry["rationale"] = d.rationale;
    ds.Append(std::move(entry));
  }
  v["decisions"] = std::move(ds);
  v["num_points"] = num_points;
  v["d2"] = d2;
  return v;
}

std::string QueryPlan::ToText() const {
  std::string text = StrFormat(
      "plan for eps=%g over %s points (D2~%.2f):\n", estimate.eps,
      WithThousands(num_points).c_str(), d2);
  for (const auto& d : decisions) {
    text += StrFormat("  %-12s = %-8s %s\n", d.knob.c_str(),
                      d.choice.c_str(), d.rationale.c_str());
  }
  text += StrFormat(
      "predicted: links~%s groups~%s (members~%s) avg_neighbors~%.1f%s\n",
      WithThousands(estimate.links).c_str(),
      WithThousands(estimate.groups).c_str(),
      WithThousands(estimate.group_member_total).c_str(),
      estimate.avg_neighbors,
      estimate.from_power_law ? " [power-law extrapolation]" : "");
  text += StrFormat(
      "predicted bytes: ssj~%s csj~%s (compression %.2fx)\n",
      HumanBytes(estimate.ssj_bytes).c_str(),
      HumanBytes(estimate.csj_bytes).c_str(), estimate.compression);
  return text;
}

QueryPlan PlanQuery(const QuerySpec& spec, const DatasetSketch& sketch,
                    int id_width) {
  CSJ_METRIC_COUNT("plan.queries", 1);
  QueryPlan plan;
  plan.num_points = sketch.num_points;
  plan.d2 = sketch.d2.slope;
  plan.estimate = EstimateOutput(sketch, spec.eps, id_width);
  plan.resolved = spec;
  const OutputEstimate& est = plan.estimate;

  auto decide = [&plan](const char* knob, std::string choice,
                        std::string rationale) {
    plan.decisions.push_back(
        {knob, std::move(choice), std::move(rationale)});
  };

  if (spec.algo != QueryAlgo::kAuto) {
    decide("algo", QueryAlgoName(spec.algo),
           "requested explicitly; the planner only prices the run");
    if (plan.resolved.threads == 0) plan.resolved.threads = 1;
    return plan;
  }

  // Algorithm. Compactness is an *output* optimization: the merge window
  // costs join-time upkeep and pays it back in bytes not written. A
  // count-only query writes nothing, so that trade can never pay — pick
  // N-CSJ, whose early-stop still skips fully-linked subtrees for free.
  // Otherwise: SSJ unless the predicted group structure pays for the
  // merge window.
  if (spec.output == OutputFormat::kNone) {
    plan.resolved.algo = QueryAlgo::kNCSJ;
    decide("algo", "ncsj",
           "output is not materialized (count-only) — compression cannot "
           "pay; early-stop still skips fully-linked subtrees");
  } else if (est.compression < kMinCompression) {
    plan.resolved.algo = QueryAlgo::kSSJ;
    decide("algo", "ssj",
           StrFormat("predicted compression %.2fx < %.2fx — the merge "
                     "window would not pay for itself",
                     est.compression, kMinCompression));
  } else {
    plan.resolved.algo = QueryAlgo::kCSJ;
    decide("algo", "csj",
           StrFormat("predicted compression %.2fx >= %.2fx — grouped "
                     "output is worth the window upkeep",
                     est.compression, kMinCompression));
  }
  RecordPick(plan.resolved.algo);

  // Merge window, by predicted neighborhood density.
  if (plan.resolved.algo == QueryAlgo::kCSJ) {
    if (est.avg_neighbors < 4.0) {
      plan.resolved.window = 4;
      decide("g", "4",
             StrFormat("sparse neighborhoods (avg ~%.1f neighbors) — a "
                       "small window already catches the mergeable links",
                       est.avg_neighbors));
    } else if (est.avg_neighbors <= 64.0) {
      plan.resolved.window = 10;
      decide("g", "10",
             StrFormat("moderate density (avg ~%.1f neighbors) — the "
                       "paper's sweet spot (Figure 6)",
                       est.avg_neighbors));
    } else {
      plan.resolved.window = 16;
      decide("g", "16",
             StrFormat("dense neighborhoods (avg ~%.1f neighbors) — a "
                       "deeper window catches merges before eviction",
                       est.avg_neighbors));
    }
  } else {
    decide("g", StrFormat("%d", plan.resolved.window),
           plan.resolved.algo == QueryAlgo::kNCSJ
               ? "unused: n-csj groups whole subtrees only at early stops"
               : "unused: ssj emits every link individually");
  }

  // Leaf kernel: SIMD once leaves are dense enough to fill vector lanes.
  // Either choice is output-identical, so this knob is pure speed.
  if (est.avg_neighbors >= kSimdDensity) {
    plan.resolved.leaf_kernel = LeafKernel::kSimd;
    decide("leaf_kernel", "simd",
           StrFormat("dense leaves (avg ~%.1f neighbors) fill the SIMD "
                     "distance lanes; output-identical to sweep",
                     est.avg_neighbors));
  } else {
    plan.resolved.leaf_kernel = LeafKernel::kSweep;
    decide("leaf_kernel", "sweep",
           StrFormat("sparse leaves (avg ~%.1f neighbors) — plane-sweep "
                     "pruning alone wins, SIMD lanes would run empty",
                     est.avg_neighbors));
  }

  plan.resolved.leaf_batch = 64;
  decide("leaf_batch", "64",
         "batched tile pipeline amortizes SoA transposes; "
         "output-invariant at any depth");

  // Serial vs parallel.
  if (spec.threads > 0) {
    decide("threads", StrFormat("%d", spec.threads),
           "requested explicitly");
  } else if (est.leaf_work > kParallelWork) {
    plan.resolved.threads = 4;
    decide("threads", "4",
           StrFormat("predicted leaf work ~%.2g candidate pairs — "
                     "parallel traversal amortizes task setup",
                     est.leaf_work));
  } else {
    plan.resolved.threads = 1;
    decide("threads", "1",
           StrFormat("predicted leaf work ~%.2g candidate pairs — serial "
                     "avoids checkpoint and replay overhead",
                     est.leaf_work));
  }
  return plan;
}

JoinOptions DeriveJoinOptions(const QuerySpec& spec) {
  JoinOptions options;
  options.epsilon = spec.eps;
  options.window_size = spec.window;
  options.leaf_kernel = spec.leaf_kernel;
  options.leaf_batch = spec.leaf_batch;
  options.sort_child_pairs = spec.sort_child_pairs;
  options.deadline_ms = spec.deadline_ms;
  return options;
}

EgoOptions DeriveEgoOptions(const QuerySpec& spec) {
  EgoOptions options;
  options.epsilon = spec.eps;
  options.window_size = spec.window;
  options.leaf_kernel = spec.leaf_kernel;
  options.leaf_batch = spec.leaf_batch;
  options.deadline_ms = spec.deadline_ms;
  return options;
}

void AttachPlan(const QueryPlan& plan, JoinStats* stats) {
  stats->predicted_links = plan.estimate.links;
  stats->predicted_groups =
      plan.resolved.algo == QueryAlgo::kSSJ ? 0 : plan.estimate.groups;
  stats->plan_json = json::Write(plan.ToJsonValue());
}

void RecordPlanAccuracy(const JoinStats& stats) {
  if (stats.plan_json.empty()) return;
  CSJ_METRIC_COUNT("plan.measured_runs", 1);
  const uint64_t actual = stats.ImpliedLinkUpperBound();
  const uint64_t predicted = stats.predicted_links;
  const uint64_t links_err =
      predicted > actual ? predicted - actual : actual - predicted;
  CSJ_METRIC_HIST("plan.links_error_pct",
                  links_err * 100 / std::max<uint64_t>(1, actual));
  if (stats.predicted_groups != 0 || stats.groups != 0) {
    const uint64_t groups_err = stats.predicted_groups > stats.groups
                                    ? stats.predicted_groups - stats.groups
                                    : stats.groups - stats.predicted_groups;
    CSJ_METRIC_HIST("plan.groups_error_pct",
                    groups_err * 100 / std::max<uint64_t>(1, stats.groups));
  }
}

}  // namespace csj::plan

#include "plan/estimator.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>

#include "util/random.h"

namespace csj::plan {

namespace {

/// Minimum sampled-pair mass below which the direct probe is considered
/// noise and the power-law fallback takes over.
constexpr double kMinProbePairs = 8.0;

/// FNV-1a over a 2-D integer cell coordinate.
uint64_t CellKey(int64_t cx, int64_t cy) {
  uint64_t key = 1469598103934665603ULL;
  key ^= static_cast<uint64_t>(cx);
  key *= 1099511628211ULL;
  key ^= static_cast<uint64_t>(cy);
  key *= 1099511628211ULL;
  return key;
}

/// Same-cell pair count over the sample at grid width `w`.
uint64_t CollisionPairs(const std::vector<Point2>& sample, double w) {
  std::unordered_map<uint64_t, uint64_t> cells;
  cells.reserve(sample.size() * 2);
  for (const auto& p : sample) {
    const auto cx = static_cast<int64_t>(std::floor(p[0] / w));
    const auto cy = static_cast<int64_t>(std::floor(p[1] / w));
    ++cells[CellKey(cx, cy)];
  }
  uint64_t pairs = 0;
  for (const auto& [key, c] : cells) pairs += c * (c - 1) / 2;
  return pairs;
}

/// Average within-eps neighbor count per *sample* point, among the sample
/// (exact grid probe, every sample point an anchor).
double SampleAverageNeighbors(const std::vector<Point2>& sample, double eps) {
  if (sample.size() < 2 || eps <= 0.0) return 0.0;
  return fractal_internal::AverageNeighbors(sample, eps, sample.size());
}

}  // namespace

json::Value DatasetSketch::ToJsonValue() const {
  json::Value v = json::Object{};
  v["num_points"] = num_points;
  v["sample_size"] = static_cast<uint64_t>(sample_size);
  v["sample_fraction"] = sample_fraction;
  json::Value spread_v = json::Array{};
  json::Value stddev_v = json::Array{};
  for (int d = 0; d < 2; ++d) {
    spread_v.Append(json::Value(spread[d]));
    stddev_v.Append(json::Value(stddev[d]));
  }
  v["spread"] = spread_v;
  v["stddev"] = stddev_v;
  json::Value d2_v = json::Object{};
  d2_v["slope"] = d2.slope;
  d2_v["intercept"] = d2.intercept;
  d2_v["r_squared"] = d2.r_squared;
  d2_v["points"] = static_cast<uint64_t>(d2_points);
  v["d2"] = d2_v;
  json::Value ladder = json::Array{};
  for (const auto& c : collisions) {
    json::Value rung = json::Object{};
    rung["width"] = c.width;
    rung["pairs"] = c.pairs;
    ladder.Append(std::move(rung));
  }
  v["collisions"] = ladder;
  return v;
}

DatasetSketch BuildSketchFromSample(std::vector<Point2> sample,
                                    uint64_t num_points,
                                    const SketchOptions& options) {
  DatasetSketch sketch;
  sketch.num_points = num_points;
  sketch.sample = std::move(sample);
  sketch.sample_size = sketch.sample.size();
  sketch.sample_fraction =
      num_points == 0 ? 1.0
                      : static_cast<double>(sketch.sample_size) /
                            static_cast<double>(num_points);
  if (sketch.sample.empty()) return sketch;

  // Per-dimension bounds, spread, stddev.
  for (int d = 0; d < 2; ++d) {
    double lo = sketch.sample[0][d], hi = sketch.sample[0][d];
    double sum = 0.0, sum_sq = 0.0;
    for (const auto& p : sketch.sample) {
      lo = std::min(lo, p[d]);
      hi = std::max(hi, p[d]);
      sum += p[d];
      sum_sq += p[d] * p[d];
    }
    const double n = static_cast<double>(sketch.sample.size());
    const double mean = sum / n;
    sketch.min_coord[d] = lo;
    sketch.max_coord[d] = hi;
    sketch.spread[d] = hi - lo;
    sketch.stddev[d] = std::sqrt(std::max(0.0, sum_sq / n - mean * mean));
  }

  // LSH collision-count ladder + power-law fit over non-empty rungs.
  std::vector<ScalingPoint> collision_samples;
  for (int e = options.ladder_min_exp; e <= options.ladder_max_exp; ++e) {
    const double w = std::ldexp(1.0, e);
    const uint64_t pairs = CollisionPairs(sketch.sample, w);
    sketch.collisions.push_back({w, pairs});
    if (pairs > 0) {
      collision_samples.push_back(
          {std::log2(w), std::log2(static_cast<double>(pairs))});
    }
  }
  sketch.collision_points = collision_samples.size();
  sketch.collision_fit = FitPowerLaw(collision_samples);

  // Correlation dimension D2 over the same width ladder.
  std::vector<double> epsilons;
  for (int e = options.ladder_min_exp; e <= options.ladder_max_exp; ++e) {
    epsilons.push_back(std::ldexp(1.0, e));
  }
  const std::vector<ScalingPoint> d2_samples =
      CorrelationSamples(sketch.sample, epsilons, sketch.sample.size());
  sketch.d2_points = d2_samples.size();
  sketch.d2 = FitPowerLaw(d2_samples);
  return sketch;
}

DatasetSketch BuildSketch(const std::vector<Point2>& points,
                          const SketchOptions& options) {
  std::vector<Point2> sample;
  if (points.size() <= options.sample_size) {
    sample = points;
  } else {
    // Seeded partial Fisher-Yates: a uniform sample, deterministic in
    // (points, seed), independent of input order pathologies beyond what
    // the shuffle erases.
    std::vector<uint32_t> index(points.size());
    std::iota(index.begin(), index.end(), 0u);
    Rng rng(options.seed);
    sample.reserve(options.sample_size);
    for (size_t i = 0; i < options.sample_size; ++i) {
      const size_t j =
          i + static_cast<size_t>(rng.UniformInt(
                  static_cast<uint64_t>(points.size() - i)));
      std::swap(index[i], index[j]);
      sample.push_back(points[index[i]]);
    }
  }
  return BuildSketchFromSample(std::move(sample), points.size(), options);
}

json::Value OutputEstimate::ToJsonValue() const {
  json::Value v = json::Object{};
  v["eps"] = eps;
  v["links"] = links;
  v["avg_neighbors"] = avg_neighbors;
  v["groups"] = groups;
  v["group_member_total"] = group_member_total;
  v["grouped_links"] = grouped_links;
  v["residual_links"] = residual_links;
  v["ssj_bytes"] = ssj_bytes;
  v["csj_bytes"] = csj_bytes;
  v["compression"] = compression;
  v["leaf_work"] = leaf_work;
  v["from_power_law"] = from_power_law;
  return v;
}

OutputEstimate EstimateOutput(const DatasetSketch& sketch, double eps,
                              int id_width) {
  OutputEstimate est;
  est.eps = eps;
  if (eps <= 0.0 || sketch.num_points < 2 || sketch.sample.size() < 2) {
    return est;
  }
  const double n = static_cast<double>(sketch.num_points);
  const double f = sketch.sample_fraction;

  // Link count: direct probe on the sample, scaled by the sampling
  // fraction (a sample point sees ~f of its true neighbors inside the
  // sample); power-law fallbacks below the sample's resolution.
  auto scaled_avg = [&](double eps_probe) {
    const double avg_sample = SampleAverageNeighbors(sketch.sample, eps_probe);
    const double pairs_sample =
        avg_sample * static_cast<double>(sketch.sample.size()) / 2.0;
    if (pairs_sample >= kMinProbePairs || f >= 1.0) {
      return std::make_pair(avg_sample / std::max(f, 1e-12), false);
    }
    if (sketch.d2_points >= 2) {
      // The D2 fit models sample-vs-sample neighbor density; the same
      // fraction scaling applies.
      return std::make_pair(sketch.d2.Predict(eps_probe) / std::max(f, 1e-12),
                            true);
    }
    if (sketch.collision_points >= 2) {
      // Same-cell pairs(w) follow the same scaling law; pairs scale with
      // f^2 and avg = 2 * pairs / sample_size.
      const double pairs = sketch.collision_fit.Predict(eps_probe);
      const double avg =
          2.0 * pairs / static_cast<double>(sketch.sample.size());
      return std::make_pair(avg / std::max(f, 1e-12), true);
    }
    return std::make_pair(avg_sample / std::max(f, 1e-12), false);
  };

  const auto [avg_full, extrapolated] = scaled_avg(eps);
  est.avg_neighbors = avg_full;
  est.from_power_law = extrapolated;
  est.links = static_cast<uint64_t>(std::llround(n * avg_full / 2.0));

  // Group structure: grid cells of side eps/sqrt(2) have diagonal <= eps,
  // so every cell with >= 2 points is a valid CSJ group. Expected full
  // occupancy of a cell holding c sample points is c / f; cells the sample
  // missed entirely are (under-)counted as no group, which keeps the group
  // prediction conservative.
  const double cell = eps / std::sqrt(2.0);
  std::unordered_map<uint64_t, uint64_t> cells;
  cells.reserve(sketch.sample.size() * 2);
  for (const auto& p : sketch.sample) {
    const auto cx = static_cast<int64_t>(std::floor(p[0] / cell));
    const auto cy = static_cast<int64_t>(std::floor(p[1] / cell));
    ++cells[CellKey(cx, cy)];
  }
  for (const auto& [key, c] : cells) {
    const auto members = static_cast<uint64_t>(
        std::llround(static_cast<double>(c) / std::max(f, 1e-12)));
    if (members < 2) continue;
    ++est.groups;
    est.group_member_total += members;
    est.grouped_links += members * (members - 1) / 2;
  }
  est.grouped_links = std::min(est.grouped_links, est.links);
  est.residual_links = est.links - est.grouped_links;

  // Byte cost in the text format: a link is two ids, a group its members,
  // each id id_width digits plus a separator.
  const auto per_id = static_cast<uint64_t>(id_width + 1);
  est.ssj_bytes = est.links * 2 * per_id;
  est.csj_bytes =
      est.group_member_total * per_id + est.residual_links * 2 * per_id;
  est.compression =
      est.csj_bytes > 0
          ? static_cast<double>(est.ssj_bytes) /
                static_cast<double>(est.csj_bytes)
          : 1.0;

  // Leaf-work proxy: candidate pairs within the tree traversal's MBR slop
  // (~3 eps) that the leaf kernels must at least consider.
  est.leaf_work = n * scaled_avg(3.0 * eps).first;
  return est;
}

}  // namespace csj::plan

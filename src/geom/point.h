#ifndef CSJ_GEOM_POINT_H_
#define CSJ_GEOM_POINT_H_

#include <array>
#include <cmath>
#include <cstdint>
#include <string>

#include "util/check.h"
#include "util/format.h"

/// \file
/// Fixed-dimension points and the distance metrics used throughout.
///
/// The dimension is a compile-time parameter: the paper's workloads are 2-D
/// (county / road data) and 3-D (Sierpinski pyramid), with higher dimensions
/// exercised by the EGO extension. All join and index code is templated on
/// the point type so the compiler fully unrolls coordinate loops.

namespace csj {

/// Identifier of a data point; the similarity-join output is expressed in
/// terms of these ids, exactly as the paper writes "0001 0002" lines.
using PointId = uint32_t;

/// The metric used for distances. L2 (Euclidean) is the paper's default.
enum class MetricKind { kL2, kL1, kLInf };

/// A point in D-dimensional space.
template <int D>
struct Point {
  static_assert(D >= 1, "dimension must be positive");
  static constexpr int kDim = D;

  std::array<double, D> coords{};

  double& operator[](int i) { return coords[i]; }
  double operator[](int i) const { return coords[i]; }

  friend bool operator==(const Point& a, const Point& b) {
    return a.coords == b.coords;
  }

  /// Human-readable "(x, y, ...)" for logs and test failures.
  std::string ToString() const {
    std::string out = "(";
    for (int i = 0; i < D; ++i) {
      if (i != 0) out += ", ";
      out += StrFormat("%.6g", coords[i]);
    }
    out += ")";
    return out;
  }
};

using Point2 = Point<2>;
using Point3 = Point<3>;

/// Squared Euclidean distance (hot path: avoids the sqrt).
template <int D>
inline double SquaredDistance(const Point<D>& a, const Point<D>& b) {
  double sum = 0.0;
  for (int i = 0; i < D; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

/// Euclidean (L2) distance.
template <int D>
inline double Distance(const Point<D>& a, const Point<D>& b) {
  return std::sqrt(SquaredDistance(a, b));
}

/// Manhattan (L1) distance.
template <int D>
inline double L1Distance(const Point<D>& a, const Point<D>& b) {
  double sum = 0.0;
  for (int i = 0; i < D; ++i) sum += std::fabs(a[i] - b[i]);
  return sum;
}

/// Chebyshev (L-infinity) distance.
template <int D>
inline double LInfDistance(const Point<D>& a, const Point<D>& b) {
  double best = 0.0;
  for (int i = 0; i < D; ++i) best = std::max(best, std::fabs(a[i] - b[i]));
  return best;
}

/// Distance under a runtime-selected metric (used by generic tooling; the
/// join inner loops use the L2 functions directly).
template <int D>
inline double DistanceUnder(MetricKind metric, const Point<D>& a,
                            const Point<D>& b) {
  switch (metric) {
    case MetricKind::kL2:
      return Distance(a, b);
    case MetricKind::kL1:
      return L1Distance(a, b);
    case MetricKind::kLInf:
      return LInfDistance(a, b);
  }
  CSJ_CHECK(false) << "unknown metric";
  return 0.0;
}

/// A point paired with its id; the unit stored in index leaves.
template <int D>
struct Entry {
  PointId id = 0;
  Point<D> point;

  friend bool operator==(const Entry& a, const Entry& b) {
    return a.id == b.id && a.point == b.point;
  }
};

}  // namespace csj

#endif  // CSJ_GEOM_POINT_H_

#ifndef CSJ_GEOM_KERNELS_ISA_H_
#define CSJ_GEOM_KERNELS_ISA_H_

#include <cstddef>
#include <cstdint>

/// \file
/// Entry points of the per-ISA kernel TUs (kernels_avx2.cc and
/// kernels_avx512.cc). Each TU is compiled with exactly its own ISA flags
/// (and -ffp-contract=off, see geom/dispatch.h for the determinism
/// contract); nothing outside geom/dispatch.cc may call these directly —
/// they are only safe to execute on a CPU that supports the ISA, which the
/// dispatcher checks. Signatures mirror KernelBackend.

namespace csj::isa {

/// Shared scalar binary search for the sweep bound: the reference
/// implementation of KernelBackend::sweep_bound and the tail the SIMD scans
/// fall back to on long windows. The predicate fl((x[j]-xi)^2) > eps2 is
/// monotone over every kernel window (geom/kernels.h), so the partition
/// point it finds equals the first-true index a linear scan finds.
inline size_t ScalarSweepBound(const double* x, size_t begin, size_t end,
                               double xi, double eps2) {
  size_t lo = begin;
  size_t hi = end;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    const double gap = x[mid] - xi;
    if (gap * gap <= eps2) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

size_t Avx2WindowHits(const double* const* dims, int dim_count,
                      const double* center, size_t begin, size_t end,
                      double eps2, uint32_t* hits);
size_t Avx2SweepBound(const double* x, size_t begin, size_t end, double xi,
                      double eps2);

size_t Avx512WindowHits(const double* const* dims, int dim_count,
                        const double* center, size_t begin, size_t end,
                        double eps2, uint32_t* hits);
size_t Avx512SweepBound(const double* x, size_t begin, size_t end, double xi,
                        double eps2);

}  // namespace csj::isa

#endif  // CSJ_GEOM_KERNELS_ISA_H_

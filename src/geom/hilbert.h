#ifndef CSJ_GEOM_HILBERT_H_
#define CSJ_GEOM_HILBERT_H_

#include <cstdint>

/// \file
/// Space-filling curve indices for bulk loading (paper refs [22-24] motivate
/// packing/bulk-load support). 2-D uses the Hilbert curve; higher dimensions
/// fall back to Morton (Z-order) interleaving, which is what practical bulk
/// loaders use when a d-dimensional Hilbert mapping is not worth the cost.

namespace csj {

/// Maps grid cell (x, y), both in [0, 2^order), to its 1-D Hilbert index.
/// order must be in [1, 31].
uint64_t HilbertIndex2D(int order, uint32_t x, uint32_t y);

/// Inverse of HilbertIndex2D: recovers (x, y) from a Hilbert index.
void HilbertPoint2D(int order, uint64_t index, uint32_t* x, uint32_t* y);

/// Morton (Z-order) interleave of up to 3 coordinates quantized to
/// `bits` bits each (bits * dims must be <= 63).
uint64_t MortonIndex(const uint32_t* coords, int dims, int bits);

}  // namespace csj

#endif  // CSJ_GEOM_HILBERT_H_

#include "geom/kernels.h"

namespace csj {

const char* LeafKernelName(LeafKernel kernel) {
  switch (kernel) {
    case LeafKernel::kNaive:
      return "naive";
    case LeafKernel::kSweep:
      return "sweep";
    case LeafKernel::kSimd:
      return "simd";
    case LeafKernel::kAvx2:
      return "avx2";
    case LeafKernel::kAvx512:
      return "avx512";
  }
  return "?";
}

bool ParseLeafKernel(std::string_view name, LeafKernel* out) {
  if (name == "naive") {
    *out = LeafKernel::kNaive;
  } else if (name == "sweep") {
    *out = LeafKernel::kSweep;
  } else if (name == "simd") {
    *out = LeafKernel::kSimd;
  } else if (name == "avx2") {
    *out = LeafKernel::kAvx2;
  } else if (name == "avx512") {
    *out = LeafKernel::kAvx512;
  } else {
    return false;
  }
  return true;
}

}  // namespace csj

#include "geom/kernels.h"

namespace csj {

const char* LeafKernelName(LeafKernel kernel) {
  switch (kernel) {
    case LeafKernel::kNaive:
      return "naive";
    case LeafKernel::kSweep:
      return "sweep";
    case LeafKernel::kSimd:
      return "simd";
  }
  return "?";
}

bool ParseLeafKernel(std::string_view name, LeafKernel* out) {
  if (name == "naive") {
    *out = LeafKernel::kNaive;
  } else if (name == "sweep") {
    *out = LeafKernel::kSweep;
  } else if (name == "simd") {
    *out = LeafKernel::kSimd;
  } else {
    return false;
  }
  return true;
}

}  // namespace csj

#include "geom/kernels_isa.h"

#include <immintrin.h>

/// \file
/// AVX-512 kernel backend: 8 doubles per 512-bit vector, mask-register
/// compares. Compiled with -mavx512f -ffp-contract=off for this TU only;
/// only geom/dispatch.cc calls in, and only after CPUID confirms AVX512F.
/// Uses foundation (F) instructions exclusively so the dispatch gate stays
/// a single feature check. Same determinism contract as the AVX2 backend:
/// separate mul/add per dimension in ascending order, no FMA.

namespace csj::isa {

size_t Avx512WindowHits(const double* const* dims, int dim_count,
                        const double* center, size_t begin, size_t end,
                        double eps2, uint32_t* hits) {
  size_t n = 0;
  const __m512d veps2 = _mm512_set1_pd(eps2);
  size_t j = begin;
  for (; j + 8 <= end; j += 8) {
    __m512d acc = _mm512_setzero_pd();
    for (int d = 0; d < dim_count; ++d) {
      const __m512d c = _mm512_loadu_pd(dims[d] + j);
      const __m512d diff = _mm512_sub_pd(c, _mm512_set1_pd(center[d]));
      acc = _mm512_add_pd(acc, _mm512_mul_pd(diff, diff));
    }
    unsigned mask = _mm512_cmp_pd_mask(acc, veps2, _CMP_LE_OQ);
    while (mask != 0) {
      const int lane = __builtin_ctz(mask);
      hits[n++] = static_cast<uint32_t>(j) + static_cast<uint32_t>(lane);
      mask &= mask - 1;
    }
  }
  for (; j < end; ++j) {  // scalar tail, same op order per pair
    double acc = 0.0;
    for (int d = 0; d < dim_count; ++d) {
      const double diff = dims[d][j] - center[d];
      acc += diff * diff;
    }
    if (acc <= eps2) hits[n++] = static_cast<uint32_t>(j);
  }
  return n;
}

size_t Avx512SweepBound(const double* x, size_t begin, size_t end, double xi,
                        double eps2) {
  const __m512d vxi = _mm512_set1_pd(xi);
  const __m512d veps2 = _mm512_set1_pd(eps2);
  size_t j = begin;
  const size_t scan_end = end - begin > 64 ? begin + 64 : end;
  for (; j + 8 <= scan_end; j += 8) {
    const __m512d gap = _mm512_sub_pd(_mm512_loadu_pd(x + j), vxi);
    const unsigned mask =
        _mm512_cmp_pd_mask(_mm512_mul_pd(gap, gap), veps2, _CMP_GT_OQ);
    if (mask != 0) return j + static_cast<size_t>(__builtin_ctz(mask));
  }
  for (; j < scan_end; ++j) {
    const double gap = x[j] - xi;
    if (gap * gap > eps2) return j;
  }
  return j < end ? ScalarSweepBound(x, j, end, xi, eps2) : end;
}

}  // namespace csj::isa

#ifndef CSJ_GEOM_KERNELS_H_
#define CSJ_GEOM_KERNELS_H_

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <string_view>
#include <vector>

#include "geom/dispatch.h"
#include "geom/point.h"
#include "util/metrics.h"

/// \file
/// Vectorizable leaf-join kernels: the pair-enumeration inner loops shared by
/// every leaf–leaf case of the tree joins (SSJ / N-CSJ / CSJ) and the EGO
/// join's JoinBuffer ranges.
///
/// The hot loop of every similarity join in this repo decides, for each pair
/// of points in a leaf (or pair of leaves), whether their distance is within
/// epsilon. The baseline is a scalar O(k^2) double loop over array-of-structs
/// Entry<D> records. This layer replaces it with three ingredients:
///
///  1. **SoA tiles** (LeafTile): a leaf's entries are transposed into
///     per-dimension contiguous coordinate arrays. Distance evaluation then
///     streams over dense double arrays instead of striding through
///     {id, point} records, which is what lets the compiler vectorize.
///     Tiles are driver-owned scratch — loading a leaf reuses capacity, so
///     steady-state leaf visits allocate nothing.
///
///  2. **Plane-sweep pruning** (LeafKernel::kSweep): the tile is sorted along
///     the dimension of largest spread; the inner loop breaks as soon as the
///     1-D gap alone exceeds epsilon. Dense leaves skip most of the pair
///     space before any full distance is computed. The pruning predicate is
///     gap*gap > eps_squared — the *same* floating-point comparison the full
///     distance test uses on that dimension's term, so a pruned pair can
///     never be one the naive loop would have accepted (the remaining
///     dimensions only add non-negative terms, and IEEE rounding is
///     monotone). Ties exactly at epsilon are therefore preserved bit-for-bit.
///
///  3. **Explicit-SIMD backends** (LeafKernel::kSimd): within the sweep
///     window, squared distances are evaluated by an ISA-specific backend
///     (geom/dispatch.h) — hand-written AVX2 / AVX-512 intrinsic loops or a
///     blocked scalar fallback — selected once at startup by CPUID (with the
///     CSJ_KERNEL_ISA env override). kSimd runs the best ISA the host
///     offers; kAvx2 / kAvx512 pin one backend for A/B benchmarking. Every
///     backend follows the determinism contract in geom/dispatch.h, so
///     accept/reject decisions are bit-identical across ISAs.
///
/// **Output discipline.** The sweep kernels buffer qualifying pairs as
/// original-index hits and replay them through the callback in exactly the
/// order the naive double loop produces (a counting sort over the tile-sized
/// index ranges keeps that replay cheap even when most pairs hit). The naive
/// kernel emits directly — it already enumerates canonically, and skipping
/// the tile transpose and hit buffer keeps it an honest pre-PR baseline.
/// All kernels are therefore *output-identical* — not just multiset-equal —
/// which matters for CSJ(g), whose group window is order-sensitive.
/// Benchmarks can ablate kernels (and ISAs) without changing results.
///
/// The kernels come in two flavors per join shape: span-based
/// (SelfJoinKernel / BlockJoinKernel, which load driver scratch tiles and
/// delegate) and tile-based (SelfJoinTileKernel / BlockJoinTileKernel,
/// operating on pre-loaded tiles). The tile flavor is what the batched leaf
/// pipeline (core/leaf_batch.h) drains through: tiles shared by several
/// deferred leaf-pair tasks are transposed once per batch, not once per
/// task.
///
/// **Accounting.** Instead of a per-pair ++stats counter, each kernel call
/// returns bulk KernelCounters (candidate pairs, distances actually
/// computed, pairs pruned by the sweep, hits) and records them once per leaf
/// through the CSJ_METRIC_* layer. `computed` is what drivers add to
/// JoinStats::distance_computations: under kNaive it equals the full pair
/// count (matching the historical per-pair increments exactly); under
/// kSweep/kSimd it counts only the pairs that survived the 1-D prune.

namespace csj {

/// Leaf-level pair-enumeration strategy.
enum class LeafKernel {
  kNaive,   ///< scalar double loop in entry order (the pre-kernel baseline)
  kSweep,   ///< sort by widest dimension + 1-D gap break
  kSimd,    ///< sweep window + best available explicit-SIMD backend
  kAvx2,    ///< like kSimd, pinned to the AVX2 backend (benchmarking)
  kAvx512,  ///< like kSimd, pinned to the AVX-512 backend (benchmarking)
};

/// Display name: "naive", "sweep", "simd", "avx2", "avx512".
const char* LeafKernelName(LeafKernel kernel);

/// Parses a LeafKernelName string (case-sensitive). Returns false on unknown
/// names and leaves *out untouched.
bool ParseLeafKernel(std::string_view name, LeafKernel* out);

/// The ISA a sweep-window mode executes with: kSimd follows the runtime
/// dispatch decision (CSJ_KERNEL_ISA override included); kAvx2 / kAvx512 pin
/// their backend, degrading to scalar via GetKernelBackend when the host (or
/// build) lacks it. kNaive and kSweep never consult a backend.
inline KernelIsa ResolveKernelIsa(LeafKernel mode) {
  switch (mode) {
    case LeafKernel::kAvx2:
      return KernelIsa::kAvx2;
    case LeafKernel::kAvx512:
      return KernelIsa::kAvx512;
    default:
      return DispatchedKernelIsa();
  }
}

/// True for modes whose distance evaluation runs through a KernelBackend
/// (and should therefore report JoinStats::kernel_isa).
inline bool LeafKernelUsesBackend(LeafKernel mode) {
  return mode != LeafKernel::kNaive && mode != LeafKernel::kSweep;
}

/// The ISA `mode` would actually execute with right now — degradation to
/// scalar included, so this is the truthful stats/metrics label.
inline KernelIsa EffectiveKernelIsa(LeafKernel mode) {
  return GetKernelBackend(ResolveKernelIsa(mode)).isa;
}

/// Bulk work accounting for one kernel invocation (or a running total).
struct KernelCounters {
  uint64_t invocations = 0;  ///< kernel calls (leaf or leaf-pair visits)
  uint64_t candidates = 0;   ///< size of the raw pair space
  uint64_t computed = 0;     ///< full distance evaluations charged
  uint64_t pruned = 0;       ///< candidates removed by the 1-D sweep bound
  uint64_t hits = 0;         ///< pairs within epsilon

  KernelCounters& operator+=(const KernelCounters& o) {
    invocations += o.invocations;
    candidates += o.candidates;
    computed += o.computed;
    pruned += o.pruned;
    hits += o.hits;
    return *this;
  }
};

/// A qualifying pair, buffered so emission can be replayed in the canonical
/// (naive double loop) order regardless of the enumeration order the kernel
/// actually used: lexicographic in (first, second) original indices. i/j are
/// the tile slots of the first/second endpoint.
struct KernelHit {
  uint32_t first;
  uint32_t second;
  uint32_t i;
  uint32_t j;
};

namespace kernel_internal {
/// Identity projection: spans of Entry<D> are used as-is; wrappers (the EGO
/// join's grid-annotated entries) pass their own projection.
struct IdentityProj {
  template <typename T>
  const T& operator()(const T& e) const {
    return e;
  }
};
}  // namespace kernel_internal

/// Structure-of-arrays scratch image of one leaf. Owned by a driver and
/// reused across leaf visits: Load() only grows capacity, never shrinks.
template <int D>
class LeafTile {
 public:
  /// Transposes `entries` (anything iterable whose elements `proj` maps to
  /// Entry<D>) into per-dimension arrays, in entry order, and records the
  /// per-dimension bounds.
  template <typename Span, typename Proj = kernel_internal::IdentityProj>
  void Load(const Span& entries, Proj proj = {}) {
    size_ = entries.size();
    ids_.resize(size_);
    orig_.resize(size_);
    for (int d = 0; d < D; ++d) {
      coords_[d].resize(size_);
      lo_[d] = 0.0;
      hi_[d] = 0.0;
    }
    size_t i = 0;
    for (const auto& elem : entries) {
      const Entry<D>& e = proj(elem);
      ids_[i] = e.id;
      orig_[i] = static_cast<uint32_t>(i);
      for (int d = 0; d < D; ++d) {
        const double c = e.point[d];
        coords_[d][i] = c;
        if (i == 0) {
          lo_[d] = c;
          hi_[d] = c;
        } else {
          lo_[d] = std::min(lo_[d], c);
          hi_[d] = std::max(hi_[d], c);
        }
      }
      ++i;
    }
    sorted_dim_ = -1;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  double lo(int d) const { return lo_[d]; }
  double hi(int d) const { return hi_[d]; }

  /// Dimension with the largest coordinate spread (the plane-sweep axis of
  /// choice: the wider the spread, the more the 1-D gap bound prunes).
  int WidestDim() const {
    int best = 0;
    double best_spread = hi_[0] - lo_[0];
    for (int d = 1; d < D; ++d) {
      const double spread = hi_[d] - lo_[d];
      if (spread > best_spread) {
        best_spread = spread;
        best = d;
      }
    }
    return best;
  }

  /// Sorts the tile's slots by ascending coordinate in dimension `dim`.
  /// Original entry order stays recoverable through OriginalIndex().
  void SortByDim(int dim) {
    if (sorted_dim_ == dim) return;
    perm_.resize(size_);
    for (size_t i = 0; i < size_; ++i) perm_[i] = static_cast<uint32_t>(i);
    const double* key = coords_[dim].data();
    std::sort(perm_.begin(), perm_.end(),
              [key](uint32_t a, uint32_t b) { return key[a] < key[b]; });
    ApplyPermutation();
    sorted_dim_ = dim;
  }

  /// Contiguous coordinate array of one dimension (the SoA payload).
  const double* Dim(int d) const { return coords_[d].data(); }

  PointId Id(size_t slot) const { return ids_[slot]; }

  /// Position the entry in `slot` had in the span passed to Load().
  uint32_t OriginalIndex(size_t slot) const { return orig_[slot]; }

  /// Reconstructs the full entry stored in `slot`.
  Entry<D> MakeEntry(size_t slot) const {
    Entry<D> e;
    e.id = ids_[slot];
    for (int d = 0; d < D; ++d) e.point[d] = coords_[d][slot];
    return e;
  }

  /// Squared L2 distance between two slots of this tile.
  double SquaredSlotDistance(size_t i, size_t j) const {
    double acc = 0.0;
    for (int d = 0; d < D; ++d) {
      const double diff = coords_[d][i] - coords_[d][j];
      acc += diff * diff;
    }
    return acc;
  }

  /// Squared L2 distance between a slot of this tile and one of `other`.
  double SquaredCrossDistance(size_t i, const LeafTile& other,
                              size_t j) const {
    double acc = 0.0;
    for (int d = 0; d < D; ++d) {
      const double diff = coords_[d][i] - other.coords_[d][j];
      acc += diff * diff;
    }
    return acc;
  }

 private:
  void ApplyPermutation() {
    scratch_coord_.resize(size_);
    for (int d = 0; d < D; ++d) {
      for (size_t i = 0; i < size_; ++i) {
        scratch_coord_[i] = coords_[d][perm_[i]];
      }
      coords_[d].swap(scratch_coord_);
      scratch_coord_.resize(size_);
    }
    scratch_id_.resize(size_);
    scratch_orig_.resize(size_);
    for (size_t i = 0; i < size_; ++i) {
      scratch_id_[i] = ids_[perm_[i]];
      scratch_orig_[i] = orig_[perm_[i]];
    }
    ids_.swap(scratch_id_);
    orig_.swap(scratch_orig_);
  }

  std::array<std::vector<double>, D> coords_;
  std::vector<PointId> ids_;
  std::vector<uint32_t> orig_;
  std::array<double, D> lo_{};
  std::array<double, D> hi_{};
  size_t size_ = 0;
  int sorted_dim_ = -1;

  // Permutation scratch, reused across SortByDim calls.
  std::vector<uint32_t> perm_;
  std::vector<double> scratch_coord_;
  std::vector<PointId> scratch_id_;
  std::vector<uint32_t> scratch_orig_;
};

/// Driver-owned scratch for the leaf kernels: two tiles (self joins use only
/// `a`), the hit buffer plus its sorting scratch, and running counter
/// totals. One instance per join driver (or EGO run); no per-leaf allocation
/// after warmup.
template <int D>
struct LeafJoinScratch {
  LeafTile<D> a;
  LeafTile<D> b;
  std::vector<KernelHit> hits;
  std::vector<KernelHit> hits_tmp;
  std::vector<uint32_t> hit_slots;
  std::vector<uint32_t> isa_hits;  ///< per-window buffer for the backends
  KernelCounters totals;
};

namespace kernel_internal {

/// Records one kernel call in the process metrics and the scratch totals.
template <int D>
inline void Account(LeafJoinScratch<D>& s, const KernelCounters& c) {
  s.totals += c;
  CSJ_METRIC_COUNT("kernel.invocations", 1);
  CSJ_METRIC_COUNT("kernel.candidates", c.candidates);
  CSJ_METRIC_COUNT("kernel.computed", c.computed);
  CSJ_METRIC_COUNT("kernel.pruned", c.pruned);
  CSJ_METRIC_COUNT("kernel.hits", c.hits);
  CSJ_METRIC_HIST("kernel.hits_per_leaf", c.hits);
}

/// Sorts hits lexicographically by (first, second) original index — the
/// canonical naive-loop emission order. The sweep kernels produce hits in
/// near-random original order, so a comparison sort pays a branch mispredict
/// per comparison and dominated dense leaves; instead this runs a two-pass
/// stable counting sort keyed on the (tile-sized) index ranges:
/// O(hits + tile) with fully predictable branches.
inline void SortHitsCanonical(std::vector<KernelHit>& hits,
                              std::vector<KernelHit>& tmp,
                              std::vector<uint32_t>& slots,
                              size_t first_range, size_t second_range) {
  const size_t n = hits.size();
  if (n < 2) return;
  if (n < 32) {
    std::sort(hits.begin(), hits.end(),
              [](const KernelHit& a, const KernelHit& b) {
                return a.first < b.first ||
                       (a.first == b.first && a.second < b.second);
              });
    return;
  }
  tmp.resize(n);
  // Stable counting sort by the second index...
  slots.assign(second_range, 0);
  for (const KernelHit& h : hits) ++slots[h.second];
  uint32_t sum = 0;
  for (uint32_t& slot : slots) {
    const uint32_t count = slot;
    slot = sum;
    sum += count;
  }
  for (const KernelHit& h : hits) tmp[slots[h.second]++] = h;
  // ...then by the first index; stability makes the result lexicographic.
  slots.assign(first_range, 0);
  for (const KernelHit& h : tmp) ++slots[h.first];
  sum = 0;
  for (uint32_t& slot : slots) {
    const uint32_t count = slot;
    slot = sum;
    sum += count;
  }
  for (const KernelHit& h : tmp) hits[slots[h.first]++] = h;
}

}  // namespace kernel_internal

/// Joins a pre-loaded tile against itself: every unordered pair of distinct
/// entries within epsilon is passed to `emit(e1, e2)`, where e1 precedes e2
/// in the tile's original entry order — the exact pairs, in the exact order,
/// the scalar `for i < j` loop produces. This is the tile-major entry point
/// the batched leaf pipeline drains through; `tile` may be driver scratch or
/// a batch-cached tile shared by several deferred tasks. The tile's sort
/// state on entry does not matter: SortByDim is memoized, window bounds and
/// prune decisions depend only on coordinate values, and hits are replayed
/// canonically. kNaive is executed as kSweep here (the transpose has already
/// been paid; output is identical) — drivers keep the naive baseline honest
/// by never routing it through tiles.
template <int D, typename Emit>
KernelCounters SelfJoinTileKernel(LeafJoinScratch<D>& s, LeafTile<D>& tile,
                                  double eps2, LeafKernel mode, Emit&& emit) {
  KernelCounters c;
  c.invocations = 1;
  const size_t n = tile.size();
  if (n >= 2) {
    c.candidates = static_cast<uint64_t>(n) * (n - 1) / 2;
    s.hits.clear();
    auto record = [&](size_t i, size_t j) {
      const uint32_t a = tile.OriginalIndex(i);
      const uint32_t b = tile.OriginalIndex(j);
      const bool swapped = a > b;  // branchless: compiles to conditional moves
      s.hits.push_back(KernelHit{swapped ? b : a, swapped ? a : b,
                                 static_cast<uint32_t>(swapped ? j : i),
                                 static_cast<uint32_t>(swapped ? i : j)});
    };

    tile.SortByDim(tile.WidestDim());
    const double* x = tile.Dim(tile.WidestDim());
    // Dimension pointers hoisted into a local array so the inner distance
    // loop streams over registers + SoA arrays instead of re-resolving
    // vector storage after every hit push.
    std::array<const double*, D> dims;
    for (int d = 0; d < D; ++d) dims[d] = tile.Dim(d);
    if (mode == LeafKernel::kSweep || mode == LeafKernel::kNaive) {
      for (size_t i = 0; i < n; ++i) {
        const double xi = x[i];
        std::array<double, D> center;
        for (int d = 0; d < D; ++d) center[d] = dims[d][i];
        for (size_t j = i + 1; j < n; ++j) {
          const double gap = x[j] - xi;
          if (gap * gap > eps2) break;
          ++c.computed;
          double acc = 0.0;
          for (int d = 0; d < D; ++d) {
            const double diff = dims[d][j] - center[d];
            acc += diff * diff;
          }
          if (acc <= eps2) record(i, j);
        }
      }
    } else {
      const KernelBackend& be = GetKernelBackend(ResolveKernelIsa(mode));
      s.isa_hits.resize(n);
      std::array<double, D> center;
      for (size_t i = 0; i < n; ++i) {
        const size_t bound = be.sweep_bound(x, i + 1, n, x[i], eps2);
        c.computed += bound - (i + 1);
        for (int d = 0; d < D; ++d) center[d] = dims[d][i];
        const size_t nh = be.window_hits(dims.data(), D, center.data(), i + 1,
                                         bound, eps2, s.isa_hits.data());
        for (size_t k = 0; k < nh; ++k) record(i, s.isa_hits[k]);
      }
    }
    c.pruned = c.candidates - c.computed;

    c.hits = s.hits.size();
    kernel_internal::SortHitsCanonical(s.hits, s.hits_tmp, s.hit_slots, n, n);
    for (const KernelHit& h : s.hits) {
      emit(tile.MakeEntry(h.i), tile.MakeEntry(h.j));
    }
  }
  kernel_internal::Account(s, c);
  return c;
}

/// Joins one leaf against itself from a span of entries: loads driver
/// scratch tile s.a and delegates to SelfJoinTileKernel — except under
/// kNaive, which runs the pre-kernel baseline byte for byte (AoS double loop
/// in entry order, direct emission, no tile transpose, no hit buffering —
/// the honest ablation floor the other modes are measured against). Returns
/// this call's work counters (also accumulated into `s.totals` and the
/// process metrics).
template <int D, typename Span,
          typename Proj = kernel_internal::IdentityProj, typename Emit>
KernelCounters SelfJoinKernel(LeafJoinScratch<D>& s, const Span& entries,
                              double eps2, LeafKernel mode, Emit&& emit,
                              Proj proj = {}) {
  if (mode == LeafKernel::kNaive) {
    KernelCounters c;
    c.invocations = 1;
    const size_t n = entries.size();
    if (n >= 2) {
      c.candidates = static_cast<uint64_t>(n) * (n - 1) / 2;
      c.computed = c.candidates;
      const auto end = std::end(entries);
      for (auto it1 = std::begin(entries); it1 != end; ++it1) {
        const Entry<D>& e1 = proj(*it1);
        for (auto it2 = std::next(it1); it2 != end; ++it2) {
          const Entry<D>& e2 = proj(*it2);
          if (SquaredDistance(e1.point, e2.point) <= eps2) {
            ++c.hits;
            emit(e1, e2);
          }
        }
      }
    }
    kernel_internal::Account(s, c);
    return c;
  }
  s.a.Load(entries, proj);
  return SelfJoinTileKernel(s, s.a, eps2, mode,
                            static_cast<Emit&&>(emit));
}

/// Joins two distinct pre-loaded tiles: every cross pair within epsilon is
/// passed to `emit(ea, eb)` with ea always drawn from tile A, in the order
/// of the scalar `for a { for b }` loop. Tile-major analog of
/// SelfJoinTileKernel, with the same caveats (sort state irrelevant, kNaive
/// executed as kSweep).
template <int D, typename Emit>
KernelCounters BlockJoinTileKernel(LeafJoinScratch<D>& s, LeafTile<D>& ta,
                                   LeafTile<D>& tb, double eps2,
                                   LeafKernel mode, Emit&& emit) {
  KernelCounters c;
  c.invocations = 1;
  const size_t na = ta.size();
  const size_t nb = tb.size();
  if (na != 0 && nb != 0) {
    c.candidates = static_cast<uint64_t>(na) * nb;
    s.hits.clear();
    auto record = [&](size_t i, size_t j) {
      s.hits.push_back(KernelHit{ta.OriginalIndex(i), tb.OriginalIndex(j),
                                 static_cast<uint32_t>(i),
                                 static_cast<uint32_t>(j)});
    };

    {
      // Sort both tiles on the widest dimension of their union so one sweep
      // axis serves both sides.
      int dim = 0;
      double best_spread = -1.0;
      for (int d = 0; d < D; ++d) {
        const double spread = std::max(ta.hi(d), tb.hi(d)) -
                              std::min(ta.lo(d), tb.lo(d));
        if (spread > best_spread) {
          best_spread = spread;
          dim = d;
        }
      }
      ta.SortByDim(dim);
      tb.SortByDim(dim);
      const double* xa = ta.Dim(dim);
      const double* xb = tb.Dim(dim);
      std::array<const double*, D> dims_a;
      std::array<const double*, D> dims_b;
      for (int d = 0; d < D; ++d) {
        dims_a[d] = ta.Dim(d);
        dims_b[d] = tb.Dim(d);
      }
      // Classic merge sweep: for ascending a-slots, the window of b-slots
      // within the 1-D bound only moves right.
      if (mode == LeafKernel::kSweep || mode == LeafKernel::kNaive) {
        size_t start = 0;
        for (size_t i = 0; i < na; ++i) {
          const double xi = xa[i];
          while (start < nb && xb[start] < xi) {
            const double gap = xi - xb[start];
            if (gap * gap <= eps2) break;
            ++start;
          }
          std::array<double, D> center;
          for (int d = 0; d < D; ++d) center[d] = dims_a[d][i];
          for (size_t j = start; j < nb; ++j) {
            const double gap = xb[j] - xi;
            if (gap > 0.0 && gap * gap > eps2) break;
            ++c.computed;
            double acc = 0.0;
            for (int d = 0; d < D; ++d) {
              const double diff = dims_b[d][j] - center[d];
              acc += diff * diff;
            }
            if (acc <= eps2) record(i, j);
          }
        }
      } else {
        // Each window [start, nb) satisfies the backend's monotonicity
        // precondition: every b-slot in it with xb[j] < xi is already
        // within the 1-D bound (the start advance established that), so
        // fl((xb[j]-xi)^2) > eps2 flips false -> true exactly once going
        // right.
        const KernelBackend& be = GetKernelBackend(ResolveKernelIsa(mode));
        s.isa_hits.resize(nb);
        std::array<double, D> center;
        size_t start = 0;
        for (size_t i = 0; i < na; ++i) {
          const double xi = xa[i];
          while (start < nb && xb[start] < xi) {
            const double gap = xi - xb[start];
            if (gap * gap <= eps2) break;
            ++start;
          }
          const size_t bound = be.sweep_bound(xb, start, nb, xi, eps2);
          c.computed += bound - start;
          for (int d = 0; d < D; ++d) center[d] = dims_a[d][i];
          const size_t nh =
              be.window_hits(dims_b.data(), D, center.data(), start, bound,
                             eps2, s.isa_hits.data());
          for (size_t k = 0; k < nh; ++k) record(i, s.isa_hits[k]);
        }
      }
      c.pruned = c.candidates - c.computed;
    }

    c.hits = s.hits.size();
    kernel_internal::SortHitsCanonical(s.hits, s.hits_tmp, s.hit_slots, na,
                                       nb);
    for (const KernelHit& h : s.hits) {
      emit(ta.MakeEntry(h.i), tb.MakeEntry(h.j));
    }
  }
  kernel_internal::Account(s, c);
  return c;
}

/// Joins two distinct leaves from spans of entries: loads driver scratch
/// tiles s.a / s.b and delegates to BlockJoinTileKernel — except under
/// kNaive, which runs the pre-kernel baseline byte for byte (AoS cross loop
/// in entry order, direct emission; see SelfJoinKernel).
template <int D, typename SpanA, typename SpanB,
          typename Proj = kernel_internal::IdentityProj, typename Emit>
KernelCounters BlockJoinKernel(LeafJoinScratch<D>& s, const SpanA& entries_a,
                               const SpanB& entries_b, double eps2,
                               LeafKernel mode, Emit&& emit, Proj proj = {}) {
  if (mode == LeafKernel::kNaive) {
    KernelCounters c;
    c.invocations = 1;
    const size_t na = entries_a.size();
    const size_t nb = entries_b.size();
    if (na != 0 && nb != 0) {
      c.candidates = static_cast<uint64_t>(na) * nb;
      c.computed = c.candidates;
      for (const auto& elem_a : entries_a) {
        const Entry<D>& e1 = proj(elem_a);
        for (const auto& elem_b : entries_b) {
          const Entry<D>& e2 = proj(elem_b);
          if (SquaredDistance(e1.point, e2.point) <= eps2) {
            ++c.hits;
            emit(e1, e2);
          }
        }
      }
    }
    kernel_internal::Account(s, c);
    return c;
  }
  s.a.Load(entries_a, proj);
  s.b.Load(entries_b, proj);
  return BlockJoinTileKernel(s, s.a, s.b, eps2, mode,
                             static_cast<Emit&&>(emit));
}

}  // namespace csj

#endif  // CSJ_GEOM_KERNELS_H_

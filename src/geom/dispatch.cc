#include "geom/dispatch.h"

#include <atomic>
#include <cstdlib>

#include "geom/kernels_isa.h"
#include "util/metrics.h"

/// \file
/// Backend tables and the startup dispatch decision (see dispatch.h).
///
/// The per-ISA TUs are referenced only under CSJ_HAVE_AVX2 / CSJ_HAVE_AVX512
/// — CMake defines those for this file exactly when it compiled the matching
/// kernels_*.cc, so a toolchain that cannot build a backend simply drops it
/// and the dispatcher never sees it.

namespace csj {
namespace {

// --- Scalar backend ----------------------------------------------------------
//
// The reference implementation every SIMD backend must match decision-for-
// decision: per candidate, `acc += (c[d] - center[d])^2` over ascending d,
// one `acc <= eps2` test. Blocked over kScalarBlock candidates so the
// compiler's auto-vectorizer still gets a branch-free inner loop; blocking
// changes neither the per-pair op sequence nor the emission order.

constexpr size_t kScalarBlock = 8;

size_t ScalarWindowHits(const double* const* dims, int dim_count,
                        const double* center, size_t begin, size_t end,
                        double eps2, uint32_t* hits) {
  size_t n = 0;
  size_t j = begin;
  for (; j + kScalarBlock <= end; j += kScalarBlock) {
    double acc[kScalarBlock] = {};
    for (int d = 0; d < dim_count; ++d) {
      const double* c = dims[d];
      const double cd = center[d];
      for (size_t lane = 0; lane < kScalarBlock; ++lane) {
        const double diff = c[j + lane] - cd;
        acc[lane] += diff * diff;
      }
    }
    for (size_t lane = 0; lane < kScalarBlock; ++lane) {
      if (acc[lane] <= eps2) hits[n++] = static_cast<uint32_t>(j + lane);
    }
  }
  for (; j < end; ++j) {
    double acc = 0.0;
    for (int d = 0; d < dim_count; ++d) {
      const double diff = dims[d][j] - center[d];
      acc += diff * diff;
    }
    if (acc <= eps2) hits[n++] = static_cast<uint32_t>(j);
  }
  return n;
}

size_t ScalarSweepBoundFn(const double* x, size_t begin, size_t end,
                          double xi, double eps2) {
  return isa::ScalarSweepBound(x, begin, end, xi, eps2);
}

constexpr KernelBackend kScalarBackend{KernelIsa::kScalar, ScalarWindowHits,
                                       ScalarSweepBoundFn};

#ifdef CSJ_HAVE_AVX2
constexpr KernelBackend kAvx2Backend{KernelIsa::kAvx2, isa::Avx2WindowHits,
                                     isa::Avx2SweepBound};
#endif
#ifdef CSJ_HAVE_AVX512
constexpr KernelBackend kAvx512Backend{
    KernelIsa::kAvx512, isa::Avx512WindowHits, isa::Avx512SweepBound};
#endif

bool CpuSupports(KernelIsa isa) {
#if defined(__x86_64__) || defined(__i386__)
  switch (isa) {
    case KernelIsa::kScalar:
      return true;
    case KernelIsa::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
    case KernelIsa::kAvx512:
      return __builtin_cpu_supports("avx512f") != 0;
  }
#endif
  return isa == KernelIsa::kScalar;
}

KernelIsa ComputeDispatchedIsa() {
  if (const char* env = std::getenv("CSJ_KERNEL_ISA")) {
    KernelIsa forced;
    if (ParseKernelIsa(env, &forced) && KernelIsaAvailable(forced)) {
      return forced;
    }
    // Unknown or unavailable override: fall through to best-available so a
    // stale env var can never mis-execute or disable the join.
  }
  if (KernelIsaAvailable(KernelIsa::kAvx512)) return KernelIsa::kAvx512;
  if (KernelIsaAvailable(KernelIsa::kAvx2)) return KernelIsa::kAvx2;
  return KernelIsa::kScalar;
}

/// -1 = undecided; otherwise the cached KernelIsa value. Benign if two
/// threads race the first resolution: both compute the same answer.
std::atomic<int> g_dispatched{-1};

}  // namespace

const char* KernelIsaName(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kScalar:
      return "scalar";
    case KernelIsa::kAvx2:
      return "avx2";
    case KernelIsa::kAvx512:
      return "avx512";
  }
  return "?";
}

bool ParseKernelIsa(std::string_view name, KernelIsa* out) {
  if (name == "scalar") {
    *out = KernelIsa::kScalar;
  } else if (name == "avx2") {
    *out = KernelIsa::kAvx2;
  } else if (name == "avx512") {
    *out = KernelIsa::kAvx512;
  } else {
    return false;
  }
  return true;
}

bool KernelIsaAvailable(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kScalar:
      return true;
    case KernelIsa::kAvx2:
#ifdef CSJ_HAVE_AVX2
      return CpuSupports(KernelIsa::kAvx2);
#else
      return false;
#endif
    case KernelIsa::kAvx512:
#ifdef CSJ_HAVE_AVX512
      return CpuSupports(KernelIsa::kAvx512);
#else
      return false;
#endif
  }
  return false;
}

KernelIsa DispatchedKernelIsa() {
  int v = g_dispatched.load(std::memory_order_relaxed);
  if (v < 0) {
    v = static_cast<int>(ComputeDispatchedIsa());
    g_dispatched.store(v, std::memory_order_relaxed);
  }
  return static_cast<KernelIsa>(v);
}

const KernelBackend& GetKernelBackend(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kScalar:
      break;
    case KernelIsa::kAvx2:
#ifdef CSJ_HAVE_AVX2
      if (CpuSupports(KernelIsa::kAvx2)) return kAvx2Backend;
#endif
      break;
    case KernelIsa::kAvx512:
#ifdef CSJ_HAVE_AVX512
      if (CpuSupports(KernelIsa::kAvx512)) return kAvx512Backend;
#endif
      break;
  }
  return kScalarBackend;
}

void RecordKernelBackendMetric(KernelIsa isa) {
  CSJ_METRIC_GAUGE_SET("kernel.backend", static_cast<int64_t>(isa));
  // The macros cache their registry entry per call site, so the per-ISA
  // counters need literal names.
  switch (isa) {
    case KernelIsa::kScalar:
      CSJ_METRIC_COUNT("kernel.backend.scalar", 1);
      break;
    case KernelIsa::kAvx2:
      CSJ_METRIC_COUNT("kernel.backend.avx2", 1);
      break;
    case KernelIsa::kAvx512:
      CSJ_METRIC_COUNT("kernel.backend.avx512", 1);
      break;
  }
}

namespace dispatch_internal {
void ResetDispatchForTesting() {
  g_dispatched.store(-1, std::memory_order_relaxed);
}
}  // namespace dispatch_internal

}  // namespace csj

#include "geom/hilbert.h"

#include "util/check.h"

namespace csj {

namespace {

/// Rotates/flips a quadrant appropriately (classic Hilbert d2xy/xy2d helper).
void HilbertRotate(uint32_t side, uint32_t* x, uint32_t* y, uint32_t rx,
                   uint32_t ry) {
  if (ry == 0) {
    if (rx == 1) {
      *x = side - 1 - *x;
      *y = side - 1 - *y;
    }
    // Swap x and y.
    const uint32_t t = *x;
    *x = *y;
    *y = t;
  }
}

}  // namespace

uint64_t HilbertIndex2D(int order, uint32_t x, uint32_t y) {
  CSJ_CHECK(order >= 1 && order <= 31) << "order=" << order;
  const uint32_t side = 1u << order;
  CSJ_DCHECK(x < side && y < side);
  uint64_t d = 0;
  for (uint32_t s = side / 2; s > 0; s /= 2) {
    const uint32_t rx = (x & s) > 0 ? 1 : 0;
    const uint32_t ry = (y & s) > 0 ? 1 : 0;
    d += static_cast<uint64_t>(s) * s * ((3 * rx) ^ ry);
    HilbertRotate(s, &x, &y, rx, ry);
  }
  return d;
}

void HilbertPoint2D(int order, uint64_t index, uint32_t* x, uint32_t* y) {
  CSJ_CHECK(order >= 1 && order <= 31) << "order=" << order;
  const uint32_t side = 1u << order;
  uint64_t t = index;
  *x = 0;
  *y = 0;
  for (uint32_t s = 1; s < side; s *= 2) {
    const uint32_t rx = 1 & static_cast<uint32_t>(t / 2);
    const uint32_t ry = 1 & static_cast<uint32_t>(t ^ rx);
    HilbertRotate(s, x, y, rx, ry);
    *x += s * rx;
    *y += s * ry;
    t /= 4;
  }
}

uint64_t MortonIndex(const uint32_t* coords, int dims, int bits) {
  CSJ_CHECK(dims >= 1 && dims <= 3);
  CSJ_CHECK(bits >= 1 && bits * dims <= 63);
  uint64_t out = 0;
  for (int b = bits - 1; b >= 0; --b) {
    for (int d = 0; d < dims; ++d) {
      out = (out << 1) | ((coords[d] >> b) & 1u);
    }
  }
  return out;
}

}  // namespace csj

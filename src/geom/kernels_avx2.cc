#include "geom/kernels_isa.h"

#include <immintrin.h>

/// \file
/// AVX2 kernel backend: 4 doubles per 256-bit vector. Compiled with -mavx2
/// -ffp-contract=off for this TU only; only geom/dispatch.cc calls in, and
/// only after CPUID confirms AVX2 (see geom/dispatch.h).
///
/// Determinism: each lane performs the scalar loop's exact FP sequence —
/// `diff = c[d] - center[d]; acc += diff * diff` over ascending d with
/// separate mul and add (no FMA: contraction is disabled, and no fmadd
/// intrinsic is used) — so accept/reject decisions are bit-identical to the
/// scalar backend, including ties exactly at epsilon.

namespace csj::isa {

size_t Avx2WindowHits(const double* const* dims, int dim_count,
                      const double* center, size_t begin, size_t end,
                      double eps2, uint32_t* hits) {
  size_t n = 0;
  const __m256d veps2 = _mm256_set1_pd(eps2);
  size_t j = begin;
  for (; j + 4 <= end; j += 4) {
    __m256d acc = _mm256_setzero_pd();
    for (int d = 0; d < dim_count; ++d) {
      const __m256d c = _mm256_loadu_pd(dims[d] + j);
      const __m256d diff = _mm256_sub_pd(c, _mm256_set1_pd(center[d]));
      acc = _mm256_add_pd(acc, _mm256_mul_pd(diff, diff));
    }
    // Ordered <= : same NaN behavior as the scalar comparison (inputs are
    // finite anyway — data/point_io.cc rejects NaN/Inf at load).
    int mask = _mm256_movemask_pd(_mm256_cmp_pd(acc, veps2, _CMP_LE_OQ));
    while (mask != 0) {
      const int lane = __builtin_ctz(static_cast<unsigned>(mask));
      hits[n++] = static_cast<uint32_t>(j) + static_cast<uint32_t>(lane);
      mask &= mask - 1;
    }
  }
  for (; j < end; ++j) {  // scalar tail, same op order per pair
    double acc = 0.0;
    for (int d = 0; d < dim_count; ++d) {
      const double diff = dims[d][j] - center[d];
      acc += diff * diff;
    }
    if (acc <= eps2) hits[n++] = static_cast<uint32_t>(j);
  }
  return n;
}

size_t Avx2SweepBound(const double* x, size_t begin, size_t end, double xi,
                      double eps2) {
  // Sweep windows are usually short: scan forward a few vectors for the
  // first out-of-range gap, then hand long windows to the binary search.
  // Both find the same partition point (the predicate is monotone over the
  // window), so the cutover is invisible to callers.
  const __m256d vxi = _mm256_set1_pd(xi);
  const __m256d veps2 = _mm256_set1_pd(eps2);
  size_t j = begin;
  const size_t scan_end = end - begin > 64 ? begin + 64 : end;
  for (; j + 4 <= scan_end; j += 4) {
    const __m256d gap = _mm256_sub_pd(_mm256_loadu_pd(x + j), vxi);
    const int mask = _mm256_movemask_pd(
        _mm256_cmp_pd(_mm256_mul_pd(gap, gap), veps2, _CMP_GT_OQ));
    if (mask != 0) {
      return j + static_cast<size_t>(
                     __builtin_ctz(static_cast<unsigned>(mask)));
    }
  }
  for (; j < scan_end; ++j) {
    const double gap = x[j] - xi;
    if (gap * gap > eps2) return j;
  }
  return j < end ? ScalarSweepBound(x, j, end, xi, eps2) : end;
}

}  // namespace csj::isa

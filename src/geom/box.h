#ifndef CSJ_GEOM_BOX_H_
#define CSJ_GEOM_BOX_H_

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "geom/point.h"

/// \file
/// Axis-aligned minimum bounding hyper-rectangles (MBRs).
///
/// The MBR is the paper's group bounding shape (Section V-A): extending a box
/// and checking that its diagonal stays below the query range are both
/// constant time, which is what makes CSJ(g)'s merge step as cheap as the
/// standard join's pair test. Min/max distances between boxes drive the
/// tree-traversal pruning and the early-stopping rule.

namespace csj {

/// Axis-aligned box in D dimensions. An empty box (default-constructed) has
/// inverted bounds and absorbs any point/box via Extend().
template <int D>
struct Box {
  static constexpr int kDim = D;

  std::array<double, D> lo;
  std::array<double, D> hi;

  Box() {
    lo.fill(std::numeric_limits<double>::infinity());
    hi.fill(-std::numeric_limits<double>::infinity());
  }

  /// Box covering exactly one point.
  explicit Box(const Point<D>& p) {
    for (int i = 0; i < D; ++i) lo[i] = hi[i] = p[i];
  }

  /// Box with explicit corners; lo must be <= hi component-wise.
  Box(const Point<D>& low, const Point<D>& high) {
    for (int i = 0; i < D; ++i) {
      CSJ_DCHECK(low[i] <= high[i]);
      lo[i] = low[i];
      hi[i] = high[i];
    }
  }

  /// True if no point has ever been added.
  bool empty() const { return lo[0] > hi[0]; }

  /// Grows the box to cover p.
  void Extend(const Point<D>& p) {
    for (int i = 0; i < D; ++i) {
      lo[i] = std::min(lo[i], p[i]);
      hi[i] = std::max(hi[i], p[i]);
    }
  }

  /// Grows the box to cover another box.
  void Extend(const Box& other) {
    for (int i = 0; i < D; ++i) {
      lo[i] = std::min(lo[i], other.lo[i]);
      hi[i] = std::max(hi[i], other.hi[i]);
    }
  }

  /// The box covering both arguments.
  static Box Union(const Box& a, const Box& b) {
    Box out = a;
    out.Extend(b);
    return out;
  }

  /// True if p lies inside (closed) this box.
  bool Contains(const Point<D>& p) const {
    for (int i = 0; i < D; ++i) {
      if (p[i] < lo[i] || p[i] > hi[i]) return false;
    }
    return true;
  }

  /// True if other is fully inside (closed) this box.
  bool Contains(const Box& other) const {
    for (int i = 0; i < D; ++i) {
      if (other.lo[i] < lo[i] || other.hi[i] > hi[i]) return false;
    }
    return true;
  }

  /// True if the boxes share at least one point.
  bool Intersects(const Box& other) const {
    for (int i = 0; i < D; ++i) {
      if (other.hi[i] < lo[i] || other.lo[i] > hi[i]) return false;
    }
    return true;
  }

  /// Side length along dimension i (0 for an empty box).
  double Extent(int i) const { return empty() ? 0.0 : hi[i] - lo[i]; }

  /// Hyper-volume; 0 for an empty box.
  double Volume() const {
    if (empty()) return 0.0;
    double v = 1.0;
    for (int i = 0; i < D; ++i) v *= hi[i] - lo[i];
    return v;
  }

  /// Surface measure used by the R*-tree split heuristic: sum of extents
  /// ("margin" in the R*-tree paper).
  double Margin() const {
    if (empty()) return 0.0;
    double m = 0.0;
    for (int i = 0; i < D; ++i) m += hi[i] - lo[i];
    return m;
  }

  /// Center of the box.
  Point<D> Center() const {
    Point<D> c;
    for (int i = 0; i < D; ++i) c[i] = 0.5 * (lo[i] + hi[i]);
    return c;
  }

  /// Squared length of the main diagonal — the squared maximum distance
  /// between any two points inside the box. This is maxMBR(.) in the paper;
  /// comparing it against eps^2 implements the early-stopping rule without a
  /// sqrt.
  double SquaredDiagonal() const {
    if (empty()) return 0.0;
    double sum = 0.0;
    for (int i = 0; i < D; ++i) {
      const double e = hi[i] - lo[i];
      sum += e * e;
    }
    return sum;
  }

  /// Length of the main diagonal (the "maximum diameter" of the MBR).
  double Diagonal() const { return std::sqrt(SquaredDiagonal()); }

  /// Volume of Union(this, other) minus Volume(this): the enlargement cost
  /// used by R-tree ChooseLeaf.
  double EnlargementTo(const Box& other) const {
    return Union(*this, other).Volume() - Volume();
  }

  /// Volume of the intersection with other (0 if disjoint).
  double OverlapVolume(const Box& other) const {
    double v = 1.0;
    for (int i = 0; i < D; ++i) {
      const double lo_i = std::max(lo[i], other.lo[i]);
      const double hi_i = std::min(hi[i], other.hi[i]);
      if (hi_i <= lo_i) return 0.0;
      v *= hi_i - lo_i;
    }
    return v;
  }

  std::string ToString() const {
    std::string out = "[";
    for (int i = 0; i < D; ++i) {
      if (i != 0) out += " x ";
      out += StrFormat("(%.6g, %.6g)", lo[i], hi[i]);
    }
    out += "]";
    return out;
  }

  friend bool operator==(const Box& a, const Box& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
};

using Box2 = Box<2>;
using Box3 = Box<3>;

/// Squared minimum distance between two boxes (0 when they intersect).
template <int D>
inline double SquaredMinDistance(const Box<D>& a, const Box<D>& b) {
  double sum = 0.0;
  for (int i = 0; i < D; ++i) {
    double gap = 0.0;
    if (b.hi[i] < a.lo[i]) {
      gap = a.lo[i] - b.hi[i];
    } else if (a.hi[i] < b.lo[i]) {
      gap = b.lo[i] - a.hi[i];
    }
    sum += gap * gap;
  }
  return sum;
}

/// Minimum distance between two boxes.
template <int D>
inline double MinDistance(const Box<D>& a, const Box<D>& b) {
  return std::sqrt(SquaredMinDistance(a, b));
}

/// Squared maximum distance between any point of a and any point of b.
/// Equals the squared diagonal of Union(a, b) only when the boxes nest
/// "outward"; in general it is the per-axis max of the farthest corners.
template <int D>
inline double SquaredMaxDistance(const Box<D>& a, const Box<D>& b) {
  double sum = 0.0;
  for (int i = 0; i < D; ++i) {
    const double span1 = std::fabs(a.hi[i] - b.lo[i]);
    const double span2 = std::fabs(b.hi[i] - a.lo[i]);
    const double span = std::max(span1, span2);
    sum += span * span;
  }
  return sum;
}

/// Maximum distance between any point of a and any point of b.
template <int D>
inline double MaxDistance(const Box<D>& a, const Box<D>& b) {
  return std::sqrt(SquaredMaxDistance(a, b));
}

/// Upper bound on the distance between any two points drawn from a ∪ b:
/// the diagonal of the union box (tight for boxes). Drives the dual-node
/// early-stopping rule.
template <int D>
inline double UnionDiameterBound(const Box<D>& a, const Box<D>& b) {
  return Box<D>::Union(a, b).Diagonal();
}

/// Squared minimum distance from a point to a box (0 when inside).
template <int D>
inline double SquaredMinDistance(const Point<D>& p, const Box<D>& b) {
  double sum = 0.0;
  for (int i = 0; i < D; ++i) {
    double gap = 0.0;
    if (p[i] < b.lo[i]) {
      gap = b.lo[i] - p[i];
    } else if (p[i] > b.hi[i]) {
      gap = p[i] - b.hi[i];
    }
    sum += gap * gap;
  }
  return sum;
}

/// Minimum distance from a point to a box.
template <int D>
inline double MinDistance(const Point<D>& p, const Box<D>& b) {
  return std::sqrt(SquaredMinDistance(p, b));
}

}  // namespace csj

#endif  // CSJ_GEOM_BOX_H_

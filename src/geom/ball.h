#ifndef CSJ_GEOM_BALL_H_
#define CSJ_GEOM_BALL_H_

#include <algorithm>
#include <string>

#include "geom/point.h"

/// \file
/// Bounding balls: the bounding shape of M-tree nodes and the conservative
/// metric-space group shape (Section V-A discusses bounding circles; we use a
/// fixed-center ball of radius eps/2 so that membership is constant time and
/// any two members are provably within eps of each other).

namespace csj {

/// A closed ball { x : d(center, x) <= radius }.
template <int D>
struct Ball {
  Point<D> center;
  double radius = 0.0;

  Ball() = default;
  Ball(const Point<D>& c, double r) : center(c), radius(r) { CSJ_DCHECK(r >= 0.0); }

  /// True if p lies inside the (closed) ball.
  bool Contains(const Point<D>& p) const {
    return Distance(center, p) <= radius;
  }

  /// Upper bound on the distance between any two points in the ball.
  double MaxDiameter() const { return 2.0 * radius; }

  std::string ToString() const {
    return "Ball{" + center.ToString() + StrFormat(", r=%.6g}", radius);
  }
};

/// Minimum possible distance between points of two balls (0 if they overlap).
template <int D>
inline double MinDistance(const Ball<D>& a, const Ball<D>& b) {
  return std::max(0.0, Distance(a.center, b.center) - a.radius - b.radius);
}

/// Maximum possible distance between points of two balls.
template <int D>
inline double MaxDistance(const Ball<D>& a, const Ball<D>& b) {
  return Distance(a.center, b.center) + a.radius + b.radius;
}

/// Upper bound on the distance between any two points drawn from a ∪ b:
/// the largest of either diameter and the across-balls bound.
template <int D>
inline double UnionDiameterBound(const Ball<D>& a, const Ball<D>& b) {
  const double across = Distance(a.center, b.center) + a.radius + b.radius;
  return std::max({2.0 * a.radius, 2.0 * b.radius, across});
}

/// Minimum possible distance from a point to a ball (0 if inside).
template <int D>
inline double MinDistance(const Point<D>& p, const Ball<D>& b) {
  return std::max(0.0, Distance(p, b.center) - b.radius);
}

/// Maximum possible distance from a point to a ball.
template <int D>
inline double MaxDistance(const Point<D>& p, const Ball<D>& b) {
  return Distance(p, b.center) + b.radius;
}

}  // namespace csj

#endif  // CSJ_GEOM_BALL_H_

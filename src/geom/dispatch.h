#ifndef CSJ_GEOM_DISPATCH_H_
#define CSJ_GEOM_DISPATCH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

/// \file
/// Runtime dispatch for the explicit-SIMD leaf-kernel backends.
///
/// The leaf kernels (geom/kernels.h) reduce every leaf–leaf join to two
/// primitives over SoA coordinate arrays:
///
///  * `sweep_bound`  — on the sorted sweep axis, find the end of the 1-D
///    candidate window of one anchor point;
///  * `window_hits`  — evaluate the full squared distance of every candidate
///    in that window against the anchor and report the in-range ones.
///
/// This header defines the backend table for those primitives and the
/// machinery that picks an implementation at startup:
///
///  * a portable scalar backend, always compiled, always available;
///  * an AVX2 backend (kernels_avx2.cc, compiled with -mavx2 only for that
///    TU) processing 4 doubles per vector;
///  * an AVX-512 backend (kernels_avx512.cc, -mavx512f) processing 8.
///
/// **Determinism contract.** Every backend performs, per candidate pair, the
/// exact floating-point operations of the scalar loop in the exact order:
/// `acc += (c[d] - center[d])^2` over ascending d, then one `acc <= eps2`
/// comparison; the sweep predicate is the same `gap*gap > eps2`. The SIMD
/// TUs are compiled with -ffp-contract=off so no FMA contraction can change
/// rounding. Backends are therefore *decision-identical*: the same pairs
/// pass, the same candidate windows are charged, and — because the kernels
/// replay hits canonically — the join output is byte-identical across ISAs.
/// (kernels_dispatch_test asserts this on every ISA the host can run.)
///
/// **Dispatch rules.** LeafKernel::kSimd resolves to the best available ISA:
/// AVX-512 > AVX2 > scalar, where "available" means the backend was compiled
/// in (CMake drops TUs the toolchain cannot build, and -DCSJ_SIMD=OFF drops
/// all of them) *and* the host CPU advertises the feature. The environment
/// variable CSJ_KERNEL_ISA=scalar|avx2|avx512 overrides the choice (for
/// tests and A/B runs); naming an unavailable or unknown ISA falls back to
/// the normal best-available rule. The explicit LeafKernel::kAvx2/kAvx512
/// values bypass the env var and run exactly that backend, degrading to
/// scalar when it is unavailable (benchmarks check availability first).

namespace csj {

/// Instruction-set architecture of a kernel backend.
enum class KernelIsa : uint8_t {
  kScalar = 0,  ///< portable C++ blocked lanes (always present)
  kAvx2 = 1,    ///< 256-bit lanes, 4 doubles per vector
  kAvx512 = 2,  ///< 512-bit lanes, 8 doubles per vector
};

/// Display name: "scalar", "avx2", "avx512".
const char* KernelIsaName(KernelIsa isa);

/// Parses a KernelIsaName string (case-sensitive). Returns false on unknown
/// names and leaves *out untouched.
bool ParseKernelIsa(std::string_view name, KernelIsa* out);

/// Function table of one ISA backend. Plain function pointers over raw SoA
/// arrays (dimension count is a runtime argument) so the per-ISA TUs stay
/// template-free and a future accelerator backend can slot in behind the
/// same signatures.
struct KernelBackend {
  KernelIsa isa = KernelIsa::kScalar;

  /// Appends the index j of every candidate in [begin, end) whose squared
  /// L2 distance to `center` is <= eps2 to `hits`, in ascending j, and
  /// returns the number appended. dims[d][j] is coordinate d of candidate
  /// j (dim_count dimensions); `hits` must have room for end - begin
  /// entries.
  size_t (*window_hits)(const double* const* dims, int dim_count,
                        const double* center, size_t begin, size_t end,
                        double eps2, uint32_t* hits) = nullptr;

  /// First index in [begin, end) of the ascending-sorted axis `x` whose 1-D
  /// squared gap from `xi` exceeds eps2 (`end` if none). The predicate
  /// fl((x[j]-xi)^2) > eps2 must be monotone over the window, which every
  /// kernel call site guarantees (see geom/kernels.h).
  size_t (*sweep_bound)(const double* x, size_t begin, size_t end, double xi,
                        double eps2) = nullptr;
};

/// True when the backend is compiled into this binary *and* the host CPU
/// supports its instruction set. kScalar is always available.
bool KernelIsaAvailable(KernelIsa isa);

/// The ISA that LeafKernel::kSimd dispatches to (see "Dispatch rules"
/// above). Resolved once and cached; thereafter a single relaxed load.
KernelIsa DispatchedKernelIsa();

/// Backend table for `isa`, falling back to scalar when `isa` is
/// unavailable. Never returns null function pointers.
const KernelBackend& GetKernelBackend(KernelIsa isa);

/// Records which backend a join run executed with: sets the
/// `kernel.backend` gauge to the KernelIsa value and bumps the per-ISA
/// `kernel.backend.<name>` run counter. Drivers call this once per run,
/// alongside filling JoinStats::kernel_isa.
void RecordKernelBackendMetric(KernelIsa isa);

namespace dispatch_internal {
/// Drops the cached dispatch decision so the next DispatchedKernelIsa()
/// re-reads CSJ_KERNEL_ISA. Test-only: the hot path assumes the cache is
/// written once.
void ResetDispatchForTesting();
}  // namespace dispatch_internal

}  // namespace csj

#endif  // CSJ_GEOM_DISPATCH_H_

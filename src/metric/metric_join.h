#ifndef CSJ_METRIC_METRIC_JOIN_H_
#define CSJ_METRIC_METRIC_JOIN_H_

#include <algorithm>
#include <deque>
#include <unordered_set>
#include <vector>

#include "core/join_options.h"
#include "core/join_stats.h"
#include "core/sink.h"
#include "metric/generic_mtree.h"
#include "util/exec_context.h"
#include "util/metrics.h"
#include "util/timer.h"

/// \file
/// Compact similarity joins in *general metric spaces* — the paper's second
/// problem ("the algorithms are equally applicable to metric space, and the
/// gains carry over", Section VII). No coordinates exist here, so the MBR
/// group shape is replaced by a bounding ball with a *fixed center and
/// radius eps/2*: any two members are within eps of each other by the
/// triangle inequality, and membership tests stay constant time (one
/// distance evaluation), preserving the Section V-A cost guarantees.
///
/// Output semantics are identical to the vector-space joins: links, groups,
/// and the same lossless expansion contract.

namespace csj {

namespace metric_internal {

/// A metric group: members all within eps/2 of the (fixed) center item.
/// Frozen groups (from subtree early stops) are proven-correct at creation
/// and never accept merges — there is no cheap way to re-center a ball in a
/// general metric space.
template <typename Item>
struct MetricGroup {
  Item center{};
  bool mergeable = false;
  std::vector<PointId> members;
  std::unordered_set<PointId> member_set;

  void AddMember(PointId id) {
    if (member_set.insert(id).second) members.push_back(id);
  }
};

}  // namespace metric_internal

/// Drives SSJ / N-CSJ / CSJ(g) over a GenericMTree.
template <typename Item, typename Metric>
class MetricJoinDriver {
 public:
  using Tree = GenericMTree<Item, Metric>;
  using EntryT = typename Tree::EntryT;
  using Group = metric_internal::MetricGroup<Item>;

  MetricJoinDriver(const Tree& tree, JoinAlgorithm algorithm,
                   const JoinOptions& options, JoinSink* sink)
      : tree_(tree),
        algorithm_(algorithm),
        options_(options),
        eps_(options.epsilon),
        half_eps_(options.epsilon / 2.0),
        sink_(sink) {
    CSJ_CHECK(options.epsilon > 0.0);
    CSJ_CHECK(sink != nullptr);
    run_ctx_.SetParent(options.exec);
    run_ctx_.SetDeadlineAfterMs(options.deadline_ms);
    stats_.algorithm = algorithm;
    stats_.epsilon = options.epsilon;
    stats_.window_size =
        algorithm == JoinAlgorithm::kCSJ ? options.window_size : 0;
  }

  JoinStats Run() {
    WallTimer timer;
    if (tree_.Root() != kInvalidNode && tree_.size() >= 2) {
      SelfJoin(tree_.Root());
    }
    Flush();
    stats_.status = sink_->error();
    if (stats_.status.ok()) stats_.status = run_ctx_.status();
    stats_.elapsed_seconds = timer.ElapsedSeconds();
    stats_.links = sink_->num_links();
    stats_.groups = sink_->num_groups();
    stats_.group_member_total = sink_->group_member_total();
    stats_.output_bytes = sink_->bytes();
    return stats_;
  }

 private:
  bool Compact() const { return algorithm_ != JoinAlgorithm::kSSJ; }
  const Metric& metric() const { return tree_.metric(); }

  /// Sink dead, cancel fired, deadline expired, or budget exhausted —
  /// checked at every node visit, like the vector-space driver.
  bool Aborted() const { return !sink_->error().ok() || run_ctx_.ShouldStop(); }

  void SelfJoin(NodeId n) {
    if (Aborted()) return;
    if (Compact() && options_.early_stop && tree_.MaxDiameter(n) <= eps_) {
      EmitSubtree(n, kInvalidNode);
      return;
    }
    if (tree_.IsLeaf(n)) {
      const auto entries = tree_.Entries(n);
      for (size_t i = 0; i < entries.size(); ++i) {
        for (size_t j = i + 1; j < entries.size(); ++j) {
          ++stats_.distance_computations;
          if (metric()(entries[i].item, entries[j].item) <= eps_) {
            EmitLink(entries[i], entries[j]);
          }
        }
      }
      return;
    }
    const auto children = tree_.Children(n);
    for (NodeId child : children) SelfJoin(child);
    for (size_t i = 0; i < children.size(); ++i) {
      for (size_t j = i + 1; j < children.size(); ++j) {
        if (tree_.MinDistance(children[i], children[j]) <= eps_) {
          DualJoin(children[i], children[j]);
        }
      }
    }
  }

  void DualJoin(NodeId n1, NodeId n2) {
    if (Aborted()) return;
    if (Compact() && options_.early_stop &&
        tree_.MaxDiameter(n1, n2) <= eps_) {
      EmitSubtree(n1, n2);
      return;
    }
    const bool leaf1 = tree_.IsLeaf(n1);
    const bool leaf2 = tree_.IsLeaf(n2);
    if (leaf1 && leaf2) {
      for (const auto& e1 : tree_.Entries(n1)) {
        for (const auto& e2 : tree_.Entries(n2)) {
          ++stats_.distance_computations;
          if (metric()(e1.item, e2.item) <= eps_) EmitLink(e1, e2);
        }
      }
      return;
    }
    if (leaf1) {
      for (NodeId c : tree_.Children(n2)) {
        if (tree_.MinDistance(n1, c) <= eps_) DualJoin(n1, c);
      }
      return;
    }
    if (leaf2) {
      for (NodeId c : tree_.Children(n1)) {
        if (tree_.MinDistance(c, n2) <= eps_) DualJoin(c, n2);
      }
      return;
    }
    for (NodeId c1 : tree_.Children(n1)) {
      for (NodeId c2 : tree_.Children(n2)) {
        if (tree_.MinDistance(c1, c2) <= eps_) DualJoin(c1, c2);
      }
    }
  }

  void EmitLink(const EntryT& a, const EntryT& b) {
    if (algorithm_ != JoinAlgorithm::kCSJ) {
      stats_.AddImpliedLink();
      sink_->Link(a.id, b.id);
      return;
    }
    // mergeIntoPrevGroup, metric version: a link joins a mergeable group if
    // BOTH endpoints are within eps/2 of the group's center.
    for (size_t i = window_.size(); i-- > 0;) {
      Group& group = window_[i];
      if (!group.mergeable) continue;
      ++stats_.merge_attempts;
      if (metric()(group.center, a.item) <= half_eps_ &&
          metric()(group.center, b.item) <= half_eps_) {
        group.AddMember(a.id);
        group.AddMember(b.id);
        ++stats_.merges;
        return;
      }
    }
    // New group centered on one endpoint — mergeable only if it can actually
    // host both members under the ball invariant.
    Group group;
    group.center = a.item;
    group.AddMember(a.id);
    group.AddMember(b.id);
    ++stats_.distance_computations;
    group.mergeable = metric()(a.item, b.item) <= half_eps_;
    if (!group.mergeable) {
      // The ball invariant cannot hold (b is in (eps/2, eps] of a); emit the
      // pair as a plain link instead of a dead group.
      stats_.AddImpliedLink();
      sink_->Link(a.id, b.id);
      return;
    }
    Push(std::move(group));
  }

  /// Early stop: all items under n1 (and n2, if given) form one group,
  /// proven by the ball bound at creation; frozen thereafter.
  void EmitSubtree(NodeId n1, NodeId n2) {
    ++stats_.early_stops;
    Group group;
    group.center = tree_.NodeCenter(n1);
    CollectMembers(n1, &group);
    if (n2 != kInvalidNode) CollectMembers(n2, &group);
    if (group.members.size() < 2) return;
    if (algorithm_ == JoinAlgorithm::kCSJ) {
      // Mergeable only if the covering ball already fits in eps/2 — then
      // future links inside it keep the mutual-eps guarantee.
      group.mergeable =
          n2 == kInvalidNode && tree_.NodeRadius(n1) <= half_eps_;
      Push(std::move(group));
    } else {
      Emit(group);
    }
  }

  void CollectMembers(NodeId n, Group* group) {
    if (tree_.IsLeaf(n)) {
      for (const auto& e : tree_.Entries(n)) group->AddMember(e.id);
      return;
    }
    for (NodeId child : tree_.Children(n)) CollectMembers(child, group);
  }

  /// Estimated heap footprint of a ball group (members + dedup set).
  static uint64_t GroupBytes(const Group& group) {
    return static_cast<uint64_t>(group.members.size()) *
               (sizeof(PointId) + 2 * sizeof(PointId)) +
           128;
  }

  void Push(Group group) {
    uint64_t charged = 0;
    if (MemoryBudget* budget = run_ctx_.memory_budget()) {
      const uint64_t bytes = GroupBytes(group);
      // Same degradation order as GroupWindow: shed oldest groups before
      // tripping kResourceExhausted.
      while (!budget->TryReserve(bytes)) {
        if (window_.empty()) {
          run_ctx_.Trip(Status::ResourceExhausted(
              "memory budget exhausted admitting a metric ball group"));
          return;
        }
        CSJ_METRIC_COUNT("resource.window_degradations", 1);
        EvictOldest();
      }
      charged = bytes;
    }
    window_.push_back(std::move(group));
    charges_.push_back(charged);
    if (window_.size() > static_cast<size_t>(std::max(options_.window_size, 1))) {
      EvictOldest();
    }
  }

  void EvictOldest() {
    Emit(window_.front());
    window_.pop_front();
    if (!charges_.empty()) {
      if (charges_.front() > 0) run_ctx_.memory_budget()->Release(charges_.front());
      charges_.pop_front();
    }
  }

  void Emit(const Group& group) {
    if (group.members.size() < 2) return;
    stats_.AddImpliedGroup(group.members.size());
    sink_->Group(group.members);
  }

  void Flush() {
    while (!window_.empty()) EvictOldest();
  }

  const Tree& tree_;
  JoinAlgorithm algorithm_;
  const JoinOptions& options_;
  double eps_;
  double half_eps_;
  JoinSink* sink_;
  ExecContext run_ctx_;
  JoinStats stats_;
  std::deque<Group> window_;
  std::deque<uint64_t> charges_;
};

/// Standard similarity self-join over a metric tree.
template <typename Item, typename Metric>
JoinStats MetricStandardJoin(const GenericMTree<Item, Metric>& tree,
                             const JoinOptions& options, JoinSink* sink) {
  MetricJoinDriver<Item, Metric> driver(tree, JoinAlgorithm::kSSJ, options,
                                        sink);
  return driver.Run();
}

/// Naive compact join (ball early stops only).
template <typename Item, typename Metric>
JoinStats MetricNaiveCompactJoin(const GenericMTree<Item, Metric>& tree,
                                 const JoinOptions& options, JoinSink* sink) {
  MetricJoinDriver<Item, Metric> driver(tree, JoinAlgorithm::kNCSJ, options,
                                        sink);
  return driver.Run();
}

/// Compact join CSJ(g) with ball-group merging.
template <typename Item, typename Metric>
JoinStats MetricCompactJoin(const GenericMTree<Item, Metric>& tree,
                            const JoinOptions& options, JoinSink* sink) {
  MetricJoinDriver<Item, Metric> driver(tree, JoinAlgorithm::kCSJ, options,
                                        sink);
  return driver.Run();
}

}  // namespace csj

#endif  // CSJ_METRIC_METRIC_JOIN_H_

#ifndef CSJ_METRIC_EDIT_DISTANCE_H_
#define CSJ_METRIC_EDIT_DISTANCE_H_

#include <algorithm>
#include <string>
#include <vector>

/// \file
/// Levenshtein edit distance — the canonical non-vector metric, used to
/// demonstrate the compact join in general metric spaces (string
/// deduplication). Includes a banded variant that exits early once the
/// distance provably exceeds a cap, which is what the join's range
/// predicate needs (d <= eps or not).

namespace csj {

/// Plain O(|a|*|b|) Levenshtein distance with two rolling rows.
int EditDistance(const std::string& a, const std::string& b);

/// Levenshtein distance capped at `cap`: returns min(distance, cap + 1),
/// computing only a diagonal band of width 2*cap+1 (O(cap * max_len)).
int EditDistanceCapped(const std::string& a, const std::string& b, int cap);

/// Metric functor over strings for GenericMTree. The M-tree needs true
/// distances for its routing radii, so this wraps the exact computation.
struct EditDistanceMetric {
  double operator()(const std::string& a, const std::string& b) const {
    return static_cast<double>(EditDistance(a, b));
  }
};

// --- Implementation (header-only; small and hot) ------------------------------

inline int EditDistance(const std::string& a, const std::string& b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) return static_cast<int>(m);
  if (m == 0) return static_cast<int>(n);
  std::vector<int> prev(m + 1), curr(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = static_cast<int>(j);
  for (size_t i = 1; i <= n; ++i) {
    curr[0] = static_cast<int>(i);
    for (size_t j = 1; j <= m; ++j) {
      const int substitution = prev[j - 1] + (a[i - 1] != b[j - 1]);
      curr[j] = std::min({prev[j] + 1, curr[j - 1] + 1, substitution});
    }
    std::swap(prev, curr);
  }
  return prev[m];
}

inline int EditDistanceCapped(const std::string& a, const std::string& b,
                              int cap) {
  const int n = static_cast<int>(a.size());
  const int m = static_cast<int>(b.size());
  if (cap < 0) return 0;
  if (std::abs(n - m) > cap) return cap + 1;
  if (n == 0) return m;
  if (m == 0) return n;

  const int kInf = cap + 1;
  std::vector<int> prev(static_cast<size_t>(m) + 1, kInf);
  std::vector<int> curr(static_cast<size_t>(m) + 1, kInf);
  for (int j = 0; j <= std::min(m, cap); ++j) prev[static_cast<size_t>(j)] = j;
  for (int i = 1; i <= n; ++i) {
    const int lo = std::max(1, i - cap);
    const int hi = std::min(m, i + cap);
    curr.assign(static_cast<size_t>(m) + 1, kInf);
    if (lo == 1 && i <= cap) curr[0] = i;
    int row_best = kInf;
    for (int j = lo; j <= hi; ++j) {
      const size_t js = static_cast<size_t>(j);
      const int substitution = prev[js - 1] + (a[static_cast<size_t>(i - 1)] !=
                                               b[js - 1]);
      const int value = std::min(
          {std::min(prev[js], curr[js - 1]) + 1, substitution, kInf});
      curr[js] = std::min(value, kInf);
      row_best = std::min(row_best, curr[js]);
    }
    if (lo == 1 && curr[0] < row_best) row_best = curr[0];
    if (row_best >= kInf) return kInf;  // the whole band exceeded the cap
    std::swap(prev, curr);
  }
  return std::min(prev[static_cast<size_t>(m)], kInf);
}

}  // namespace csj

#endif  // CSJ_METRIC_EDIT_DISTANCE_H_

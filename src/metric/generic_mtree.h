#ifndef CSJ_METRIC_GENERIC_MTREE_H_
#define CSJ_METRIC_GENERIC_MTREE_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <limits>
#include <span>
#include <vector>

#include "geom/point.h"
#include "index/spatial_index.h"
#include "util/check.h"
#include "util/random.h"

/// \file
/// M-tree over *arbitrary items* under a user-supplied metric.
///
/// The paper's second problem statement covers general metric spaces: the
/// join algorithms only need min/max distances between node bounding shapes
/// and the inclusion property, never coordinates. This tree makes that
/// concrete: items can be strings under edit distance, spectra under DTW,
/// anything with a metric. The coordinate M-tree in index/mtree.h is the
/// Euclidean specialization used by the paper's Experiment 4; this one backs
/// the metric compact join in metric/metric_join.h.
///
/// Distance functor requirements: `double operator()(const Item&, const
/// Item&) const`, a true metric (symmetry + triangle inequality); the tree's
/// bounds are invalid otherwise.

namespace csj {

/// An item paired with its id.
template <typename Item>
struct MetricEntry {
  PointId id = 0;
  Item item{};
};

/// Construction parameters (mirrors MTreeOptions).
struct GenericMTreeOptions {
  size_t max_fanout = 16;
  size_t min_fanout = 2;
  /// Promotion candidates examined per split (sampled pairs).
  int sampled_pairs = 48;
  uint64_t seed = 0x5eedULL;
};

/// M-tree over Item under Metric.
template <typename Item, typename Metric>
class GenericMTree {
 public:
  using EntryT = MetricEntry<Item>;

  explicit GenericMTree(Metric metric = Metric(),
                        const GenericMTreeOptions& options =
                            GenericMTreeOptions())
      : metric_(std::move(metric)), options_(options), rng_(options.seed) {
    CSJ_CHECK(options.max_fanout >= 4);
    CSJ_CHECK(options.min_fanout >= 1 &&
              options.min_fanout <= options.max_fanout / 2);
  }

  // --- Join interface (the metric analog of SpatialIndex) --------------------

  NodeId Root() const { return root_; }
  bool IsLeaf(NodeId n) const { return node(n).is_leaf; }

  std::span<const NodeId> Children(NodeId n) const {
    CSJ_DCHECK(!node(n).is_leaf);
    return node(n).children;
  }

  std::span<const EntryT> Entries(NodeId n) const {
    CSJ_DCHECK(node(n).is_leaf);
    return node(n).entries;
  }

  /// Ball bound on pairwise distances within the subtree.
  double MaxDiameter(NodeId n) const { return 2.0 * node(n).radius; }

  /// Bound over the union of two subtrees.
  double MaxDiameter(NodeId a, NodeId b) const {
    const Node& na = node(a);
    const Node& nb = node(b);
    const double across =
        metric_(na.center, nb.center) + na.radius + nb.radius;
    return std::max({2.0 * na.radius, 2.0 * nb.radius, across});
  }

  double MinDistance(NodeId a, NodeId b) const {
    const Node& na = node(a);
    const Node& nb = node(b);
    return std::max(0.0,
                    metric_(na.center, nb.center) - na.radius - nb.radius);
  }

  uint64_t size() const { return size_; }
  uint64_t NodeCount() const { return live_nodes_; }
  bool empty() const { return root_ == kInvalidNode; }
  int Height() const { return empty() ? 0 : node(root_).level + 1; }
  const Metric& metric() const { return metric_; }

  /// Routing item and covering radius of a node (for diagnostics).
  const Item& NodeCenter(NodeId n) const { return node(n).center; }
  double NodeRadius(NodeId n) const { return node(n).radius; }

  // --- Mutation ----------------------------------------------------------------

  void Insert(PointId id, const Item& item) {
    if (root_ == kInvalidNode) {
      root_ = AllocNode(/*is_leaf=*/true, /*level=*/0);
      Node& r = node(root_);
      r.center = item;
      r.entries.push_back(EntryT{id, item});
      ++size_;
      return;
    }
    const NodeId leaf = ChooseLeaf(item);
    node(leaf).entries.push_back(EntryT{id, item});
    ++size_;
    if (node(leaf).entries.size() > options_.max_fanout) Split(leaf);
  }

  // --- Queries -------------------------------------------------------------------

  /// All entries within `radius` (closed) of `query`.
  std::vector<EntryT> RangeQuery(const Item& query, double radius) const {
    std::vector<EntryT> out;
    if (empty()) return out;
    std::vector<NodeId> stack = {root_};
    while (!stack.empty()) {
      const Node& nd = node(stack.back());
      stack.pop_back();
      if (metric_(query, nd.center) > radius + nd.radius) continue;
      if (nd.is_leaf) {
        for (const EntryT& e : nd.entries) {
          if (metric_(query, e.item) <= radius) out.push_back(e);
        }
      } else {
        for (NodeId child : nd.children) stack.push_back(child);
      }
    }
    return out;
  }

  // --- Validation -------------------------------------------------------------------

  void CheckInvariants() const {
    if (empty()) {
      CSJ_CHECK_EQ(size_, 0u);
      return;
    }
    uint64_t counted = 0;
    CheckSubtree(root_, kInvalidNode, &counted);
    CSJ_CHECK_EQ(counted, size_);
  }

 private:
  struct Node {
    Item center{};
    double radius = 0.0;
    NodeId parent = kInvalidNode;
    int level = 0;
    bool is_leaf = true;
    std::vector<NodeId> children;
    std::vector<EntryT> entries;

    size_t fanout() const { return is_leaf ? entries.size() : children.size(); }
  };

  Node& node(NodeId id) {
    CSJ_DCHECK(id < arena_.size());
    return arena_[id];
  }
  const Node& node(NodeId id) const {
    CSJ_DCHECK(id < arena_.size());
    return arena_[id];
  }

  NodeId AllocNode(bool is_leaf, int level) {
    const NodeId id = static_cast<NodeId>(arena_.size());
    arena_.emplace_back();
    arena_.back().is_leaf = is_leaf;
    arena_.back().level = level;
    ++live_nodes_;
    return id;
  }

  NodeId ChooseLeaf(const Item& item) {
    NodeId n = root_;
    while (true) {
      Node& nd = node(n);
      nd.radius = std::max(nd.radius, metric_(nd.center, item));
      if (nd.is_leaf) return n;
      NodeId best = kInvalidNode;
      double best_cost = std::numeric_limits<double>::infinity();
      bool best_covers = false;
      for (NodeId child : nd.children) {
        const Node& c = node(child);
        const double dist = metric_(c.center, item);
        const bool covers = dist <= c.radius;
        const double cost = covers ? dist : dist - c.radius;
        if ((covers && !best_covers) ||
            (covers == best_covers && cost < best_cost)) {
          best = child;
          best_cost = cost;
          best_covers = covers;
        }
      }
      n = best;
    }
  }

  /// Sampled promotion minimizing the larger generalized-hyperplane radius.
  template <typename GetItem>
  std::pair<size_t, size_t> Promote(size_t n, GetItem get) {
    CSJ_DCHECK(n >= 2);
    auto evaluate = [&](size_t a, size_t b) {
      double ra = 0.0, rb = 0.0;
      for (size_t i = 0; i < n; ++i) {
        const double da = metric_(get(i), get(a));
        const double db = metric_(get(i), get(b));
        if (da <= db) {
          ra = std::max(ra, da);
        } else {
          rb = std::max(rb, db);
        }
      }
      return std::max(ra, rb);
    };
    size_t best_a = 0, best_b = 1;
    double best = evaluate(0, 1);
    const int trials = options_.sampled_pairs;
    for (int t = 0; t < trials; ++t) {
      const size_t a = rng_.UniformInt(static_cast<uint64_t>(n));
      size_t b = rng_.UniformInt(static_cast<uint64_t>(n));
      while (b == a) b = rng_.UniformInt(static_cast<uint64_t>(n));
      const double score = evaluate(a, b);
      if (score < best) {
        best = score;
        best_a = a;
        best_b = b;
      }
    }
    return {best_a, best_b};
  }

  void Split(NodeId n) {
    while (true) {
      Node& nd = node(n);
      const NodeId sibling = AllocNode(nd.is_leaf, nd.level);
      Node& left = node(n);
      Node& right = node(sibling);

      if (left.is_leaf) {
        std::vector<EntryT> items = std::move(left.entries);
        left.entries.clear();
        auto [a, b] =
            Promote(items.size(), [&](size_t i) -> const Item& {
              return items[i].item;
            });
        left.center = items[a].item;
        right.center = items[b].item;
        for (const EntryT& e : items) {
          const double da = metric_(e.item, left.center);
          const double db = metric_(e.item, right.center);
          if (da <= db) {
            left.entries.push_back(e);
          } else {
            right.entries.push_back(e);
          }
        }
        RebalanceLeaves(&left, &right);
        left.radius = 0.0;
        for (const EntryT& e : left.entries) {
          left.radius = std::max(left.radius, metric_(left.center, e.item));
        }
        right.radius = 0.0;
        for (const EntryT& e : right.entries) {
          right.radius = std::max(right.radius, metric_(right.center, e.item));
        }
      } else {
        std::vector<NodeId> items = std::move(left.children);
        left.children.clear();
        auto [a, b] = Promote(items.size(), [&](size_t i) -> const Item& {
          return node(items[i]).center;
        });
        left.center = node(items[a]).center;
        right.center = node(items[b]).center;
        for (NodeId c : items) {
          const double da = metric_(node(c).center, left.center);
          const double db = metric_(node(c).center, right.center);
          if (da <= db) {
            left.children.push_back(c);
          } else {
            right.children.push_back(c);
          }
        }
        RebalanceInternal(&left, &right);
        for (NodeId c : left.children) node(c).parent = n;
        for (NodeId c : right.children) node(c).parent = sibling;
        left.radius = CoveringRadius(left);
        right.radius = CoveringRadius(right);
      }

      const NodeId parent = left.parent;
      if (parent == kInvalidNode) {
        const NodeId new_root = AllocNode(/*is_leaf=*/false, left.level + 1);
        Node& r = node(new_root);
        r.children = {n, sibling};
        node(n).parent = new_root;
        node(sibling).parent = new_root;
        r.center = node(n).center;
        r.radius = CoveringRadius(r);
        root_ = new_root;
        return;
      }
      Node& p = node(parent);
      p.children.push_back(sibling);
      node(sibling).parent = parent;
      if (p.children.size() <= options_.max_fanout) return;
      n = parent;
    }
  }

  void RebalanceLeaves(Node* left, Node* right) {
    auto donate = [&](Node* from, Node* to) {
      while (to->entries.size() < options_.min_fanout) {
        size_t pick = 0;
        double best = std::numeric_limits<double>::infinity();
        for (size_t i = 0; i < from->entries.size(); ++i) {
          const double d = metric_(from->entries[i].item, to->center);
          if (d < best) {
            best = d;
            pick = i;
          }
        }
        to->entries.push_back(from->entries[pick]);
        from->entries[pick] = from->entries.back();
        from->entries.pop_back();
      }
    };
    if (left->entries.size() < options_.min_fanout) donate(right, left);
    if (right->entries.size() < options_.min_fanout) donate(left, right);
  }

  void RebalanceInternal(Node* left, Node* right) {
    auto donate = [&](Node* from, Node* to) {
      while (to->children.size() < options_.min_fanout) {
        size_t pick = 0;
        double best = std::numeric_limits<double>::infinity();
        for (size_t i = 0; i < from->children.size(); ++i) {
          const double d = metric_(node(from->children[i]).center, to->center);
          if (d < best) {
            best = d;
            pick = i;
          }
        }
        to->children.push_back(from->children[pick]);
        from->children[pick] = from->children.back();
        from->children.pop_back();
      }
    };
    if (left->children.size() < options_.min_fanout) donate(right, left);
    if (right->children.size() < options_.min_fanout) donate(left, right);
  }

  double CoveringRadius(const Node& nd) const {
    double r = 0.0;
    for (NodeId child : nd.children) {
      const Node& c = node(child);
      r = std::max(r, metric_(nd.center, c.center) + c.radius);
    }
    return r;
  }

  void CheckSubtree(NodeId n, NodeId expected_parent, uint64_t* counted) const {
    const Node& nd = node(n);
    CSJ_CHECK_EQ(nd.parent, expected_parent);
    CSJ_CHECK_LE(nd.fanout(), options_.max_fanout);
    if (n != root_) {
      CSJ_CHECK_GE(nd.fanout(), options_.min_fanout);
    }
    CheckCovering(n, nd.center, nd.radius);
    if (nd.is_leaf) {
      CSJ_CHECK_EQ(nd.level, 0);
      *counted += nd.entries.size();
      return;
    }
    for (NodeId child : nd.children) {
      CSJ_CHECK_EQ(node(child).level, nd.level - 1);
      CheckSubtree(child, n, counted);
    }
  }

  void CheckCovering(NodeId n, const Item& center, double radius) const {
    const Node& nd = node(n);
    if (nd.is_leaf) {
      for (const EntryT& e : nd.entries) {
        CSJ_CHECK_LE(metric_(center, e.item), radius + 1e-9)
            << "item escapes covering radius";
      }
      return;
    }
    for (NodeId child : nd.children) CheckCovering(child, center, radius);
  }

  Metric metric_;
  GenericMTreeOptions options_;
  Rng rng_;
  NodeId root_ = kInvalidNode;
  uint64_t size_ = 0;
  uint64_t live_nodes_ = 0;
  std::deque<Node> arena_;
};

}  // namespace csj

#endif  // CSJ_METRIC_GENERIC_MTREE_H_

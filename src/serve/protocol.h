#ifndef CSJ_SERVE_PROTOCOL_H_
#define CSJ_SERVE_PROTOCOL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/join_options.h"
#include "core/join_stats.h"
#include "core/query_spec.h"
#include "core/sink.h"
#include "util/json.h"
#include "util/metrics.h"
#include "util/status.h"

/// \file
/// Wire protocol of csj_serve: newline-delimited JSON framing around the
/// engine's native payload formats.
///
/// A connection is a **keep-alive session** carrying any number of
/// request/response exchanges in sequence:
///
///   client -> server   one JSON object on a single line
///   server -> client   header line | payload bytes | trailer line
///   (repeat until either side closes, the idle timeout expires, or the
///    per-connection request cap is reached)
///
/// Every response is self-delimiting (single line, or header + structurally
/// delimited payload + trailer), so the next request can follow immediately.
/// A malformed request line ends the session after the error line — framing
/// is no longer trustworthy; semantic errors (unknown dataset, bad eps) are
/// answered with an error line and the session continues.
///
/// Request fields (all optional unless noted). Everything except `op`,
/// `metrics`, `center` and `path` is a QuerySpec field (core/query_spec.h)
/// and is parsed by `QuerySpec::FromJson` — the wire names ARE the QuerySpec
/// JSON names, so a served query and a one-shot `csj_tool join` run are
/// described by the same document:
///
///   op          (required) "ping" | "list" | "join" | "range" |
///               "load" | "reload" | "unload"  (admin, see below)
///   dataset     (join/range) registered dataset name
///   dataset_b   second dataset: selects a dual (spatial) join
///   algo        "auto" | "ssj" | "ncsj" | "csj"    (default "csj"; "auto"
///               lets the cost-based planner pick the algorithm and knobs
///               against the dataset's load-time sketch, and the trailer's
///               stats.plan echoes the resolved, explained plan)
///   eps         epsilon > 0 (required for join/range)
///   g           CSJ(g) window size                 (default 10)
///   leaf_kernel "naive" | "sweep" | "simd" | "avx2" | "avx512"
///               (default "sweep"; simd dispatches to the best host ISA and
///               the trailer's stats.kernel_isa records which one ran)
///   leaf_batch  leaf-tile pairs buffered per batched kernel pass
///               (default 64; 0/1 disables batching; output-invariant)
///   sort_child_pairs  bool                         (default false)
///   threads     accepted and ignored: every served query runs serial on a
///               server worker
///   output      "text" | "binary" | "none"         (default "text";
///               range queries are text-only)
///   deadline_ms per-query wall-clock budget; 0 = server default
///   mem_budget  per-query bytes, carved from the server-wide budget
///   metrics     bool: include a per-query metrics delta in the trailer
///   center      (range, required) point coordinates, e.g. [0.5, 0.5]
///   path        (load/reload, required) dataset source file on the server
///
/// Admin ops drive the registry's epoch lifecycle (serve/registry.h):
/// "load" registers `dataset` from `path`, "reload" replaces it with a
/// freshly validated epoch (a failure leaves the old epoch serving), and
/// "unload" drops it (in-flight queries finish on their pinned epoch).
/// All three answer with a single `{"ok":true,...}` line carrying the
/// resulting epoch number, or an error line.
///
/// Response framing:
///
///   * errors before execution: a single `{"ok":false,...}` line, no payload.
///   * "ping"/"list"/admin ops: a single `{"ok":true,...}` line.
///   * "join"/"range": a header line `{"ok":true,"format":...,"id_width":W}`,
///     the payload in the engine's native format (the same bytes a one-shot
///     `csj_tool join --out` run writes), then one trailer line with
///     `"done":true`, the terminal status, JoinStats, and (on request) the
///     metrics window of the query. The payload of a governed stop
///     (deadline / cancel / budget) is a valid prefix: text ends at a record
///     boundary, binary is sealed with its EOF marker and footer, and the
///     trailer's status code says why the result is partial.
///
/// Text payload lines never start with '{' (fixed-width decimal ids), and a
/// binary payload is structurally self-delimiting, so the trailer line is
/// unambiguous in both formats; ReadFramedPayload implements the client
/// side.

namespace csj::serve {

/// One parsed request line: the protocol envelope (op / metrics / center /
/// path) around the embedded QuerySpec carrying every query knob.
struct Request {
  std::string op;
  bool want_metrics = false;
  std::vector<double> center;
  std::string path;  ///< source file for the load/reload admin ops
  QuerySpec spec;

  bool is_admin() const {
    return op == "load" || op == "reload" || op == "unload";
  }
};

/// Parses and validates one request line. Unknown fields are rejected (a
/// typo'd knob silently ignored would be worse than an error).
Result<Request> ParseRequest(const std::string& line);

/// `{"ok":false,"code":...,"error":...}` — single-line, newline-terminated.
std::string ErrorLine(const Status& status);

/// `{"ok":true,"op":...}` plus `extra`'s fields — single line for ping/list.
std::string OkLine(const std::string& op, const json::Object& extra = {});

/// Header line announcing a payload.
std::string HeaderLine(const std::string& op, OutputFormat format,
                       int id_width);

/// Trailer line: terminal status + stats (+ metrics delta when non-null).
std::string TrailerLine(const Status& status, const JoinStats& stats,
                        uint64_t payload_bytes,
                        const metrics::MetricsSnapshot* delta);

/// Buffered line/byte reader over a descriptor, used by the query client
/// and the tests. `timeout_ms < 0` blocks forever; otherwise each refill
/// poll()s and a quiet peer fails with kDeadlineExceeded.
class LineReader {
 public:
  explicit LineReader(int fd, int timeout_ms = -1)
      : fd_(fd), timeout_ms_(timeout_ms) {}

  /// Changes the per-refill timeout; buffered bytes are unaffected. The
  /// server uses this to give the first request line and keep-alive idle
  /// waits different budgets over one reader.
  void set_timeout_ms(int timeout_ms) { timeout_ms_ = timeout_ms; }

  /// Reads up to and including '\n'; returns the line without it. EOF with
  /// no buffered bytes is kUnavailable ("peer closed").
  Status ReadLine(std::string* line);

  /// Reads exactly `size` bytes (for binary payload scanning).
  Status ReadExact(char* out, size_t size);

  /// Maximum accepted line length; longer requests are a protocol error.
  static constexpr size_t kMaxLine = 1 << 20;

 private:
  Status Refill();

  int fd_;
  int timeout_ms_;
  std::string buffer_;
  size_t pos_ = 0;
};

/// Client-side framing: after the header line has been read, consumes the
/// payload — forwarding each chunk to `write` as it arrives, so a consumer
/// sees bytes before the query finishes — and then the trailer line. Text
/// payloads are delimited by the first line starting with '{'; binary
/// payloads are walked structurally (file header, blocks, EOF marker,
/// footer); `format == kNone` expects an empty payload. A non-OK status
/// from `write` aborts the scan and is returned as-is (e.g. the consumer
/// hung up — close the socket, which cancels the query server-side).
Status StreamFramedPayload(LineReader* reader, OutputFormat format,
                           const std::function<Status(const char*, size_t)>&
                               write,
                           std::string* trailer_line);

/// StreamFramedPayload into a string (tests, small results).
Status ReadFramedPayload(LineReader* reader, OutputFormat format,
                         std::string* payload, std::string* trailer_line);

/// Writes all of `data`, retrying short writes; EPIPE (and any other write
/// failure) returns the error without raising SIGPIPE side effects — the
/// process is expected to ignore SIGPIPE.
Status WriteAll(int fd, const char* data, size_t size);
inline Status WriteAll(int fd, const std::string& s) {
  return WriteAll(fd, s.data(), s.size());
}

}  // namespace csj::serve

#endif  // CSJ_SERVE_PROTOCOL_H_

#include "serve/server.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <optional>

#include "core/similarity_join.h"
#include "core/sink.h"
#include "plan/planner.h"
#include "serve/protocol.h"
#include "storage/output_file.h"
#include "util/format.h"
#include "util/metrics.h"

namespace csj::serve {

namespace {

/// Runs a governed range query (all points within eps of a center) over the
/// shared tree, streaming fixed-width ids in tree order. Counts land in the
/// JoinStats `links` / `output_bytes` fields so the trailer shape matches
/// joins.
Status RunRangeQuery(int fd, const Request& req, const Dataset& dataset,
                     const ExecContext& exec, JoinStats* stats) {
  if (req.center.size() != static_cast<size_t>(kServeDim)) {
    return Status::InvalidArgument(StrFormat(
        "center has %zu coordinates, the dataset is %d-dimensional",
        req.center.size(), kServeDim));
  }
  Point<kServeDim> center;
  for (int d = 0; d < kServeDim; ++d) center[d] = req.center[d];

  OutputFile out;
  CSJ_RETURN_IF_ERROR(out.OpenFd(fd, OutputFile::Options{.atomic = false}));

  const auto& tree = dataset.tree;
  Status result;
  std::vector<NodeId> stack;
  if (tree.Root() != kInvalidNode) stack.push_back(tree.Root());
  while (!stack.empty()) {
    if (exec.ShouldStop()) {
      result = exec.status();
      break;
    }
    const NodeId n = stack.back();
    stack.pop_back();
    if (tree.IsLeaf(n)) {
      for (const auto& entry : tree.Entries(n, &exec)) {
        if (Distance(center, entry.point) > req.spec.eps) continue;
        ++stats->links;
        result = out.Append(
            StrFormat("%0*u\n", dataset.id_width, entry.id));
        if (!result.ok()) break;
      }
      if (!result.ok()) break;
    } else {
      for (const NodeId child : tree.Children(n, &exec)) {
        if (MinDistance(center, tree.Shape(child)) <= req.spec.eps) {
          stack.push_back(child);
        }
      }
    }
  }
  stats->output_bytes = out.bytes_written();
  const Status closed = out.Close();
  return result.ok() ? closed : result;
}

json::Value DatasetInfo(const Dataset& dataset) {
  json::Value info = json::Object{};
  info["name"] = dataset.name;
  info["points"] = dataset.num_points;
  info["id_width"] = static_cast<int64_t>(dataset.id_width);
  info["source"] = dataset.source_path;
  return info;
}

}  // namespace

Server::Server(DatasetRegistry* registry, ServerOptions options)
    : registry_(registry), options_(std::move(options)) {}

Server::~Server() { Shutdown(); }

Status Server::Start() {
  CSJ_CHECK(!started_) << "Server::Start called twice";
  // Streaming responses rely on a hangup surfacing as EPIPE in the sink
  // (clean per-query kCancelled), never as a process-killing signal.
  std::signal(SIGPIPE, SIG_IGN);

  if (!options_.unix_socket_path.empty()) {
    struct sockaddr_un addr;
    if (options_.unix_socket_path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("socket path too long: " +
                                     options_.unix_socket_path);
    }
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return Status::IoError(std::string("socket failed: ") +
                             std::strerror(errno));
    }
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, options_.unix_socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(options_.unix_socket_path.c_str());  // stale socket from a crash
    if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      const Status status =
          Status::IoError("bind failed: " + options_.unix_socket_path + ": " +
                          std::strerror(errno));
      ::close(listen_fd_);
      listen_fd_ = -1;
      return status;
    }
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return Status::IoError(std::string("socket failed: ") +
                             std::strerror(errno));
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(options_.tcp_port));
    if (::inet_pton(AF_INET, options_.tcp_host.c_str(), &addr.sin_addr) != 1) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return Status::InvalidArgument("bad listen host: " + options_.tcp_host);
    }
    if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      const Status status = Status::IoError(
          StrFormat("bind failed: %s:%d: %s", options_.tcp_host.c_str(),
                    options_.tcp_port, std::strerror(errno)));
      ::close(listen_fd_);
      listen_fd_ = -1;
      return status;
    }
    struct sockaddr_in bound;
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&bound),
                      &bound_len) == 0) {
      bound_tcp_port_ = ntohs(bound.sin_port);
    }
  }
  if (::listen(listen_fd_, 64) != 0) {
    const Status status = Status::IoError(std::string("listen failed: ") +
                                          std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }

  started_ = true;
  acceptor_ = std::thread([this] { AcceptLoop(); });
  const int workers = options_.workers < 1 ? 1 : options_.workers;
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  watcher_ = std::thread([this] { WatchLoop(); });
  return Status::OK();
}

void Server::Shutdown() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  // Drain, not abort: stop admitting, then let every accepted query finish.
  draining_.store(true, std::memory_order_release);
  acceptor_.join();
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  watch_stop_.store(true, std::memory_order_release);
  watcher_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!options_.unix_socket_path.empty()) {
    ::unlink(options_.unix_socket_path.c_str());
  }
}

ServerCounters Server::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

void Server::AcceptLoop() {
  while (!draining_.load(std::memory_order_acquire)) {
    // Poll with a timeout instead of blocking in accept: Shutdown() only
    // has to flip `draining_` and the loop exits within one tick.
    struct pollfd pfd = {listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 100);
    if (rc < 0 && errno != EINTR) break;
    if (rc <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    bool admitted = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!draining_.load(std::memory_order_relaxed) &&
          pending_.size() < options_.max_pending) {
        pending_.push_back(fd);
        ++counters_.accepted;
        admitted = true;
      } else {
        ++counters_.rejected;
      }
    }
    if (admitted) {
      queue_cv_.notify_one();
    } else {
      // Reject at the door with a well-formed error — bounded memory under
      // overload, and the client learns why instead of seeing a hangup.
      CSJ_METRIC_COUNT("serve.admission_rejects", 1);
      WriteAll(fd, ErrorLine(Status::ResourceExhausted(
                       "admission queue is full, try again later")))
          .ok();
      ::close(fd);
    }
  }
}

void Server::WorkerLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] {
        return !pending_.empty() || draining_.load(std::memory_order_relaxed);
      });
      if (pending_.empty()) {
        // Draining and nothing left: the queue can only shrink now.
        if (draining_.load(std::memory_order_relaxed)) return;
        continue;
      }
      fd = pending_.front();
      pending_.pop_front();
    }
    HandleConnection(fd);
    ::close(fd);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.served;
    }
    CSJ_METRIC_COUNT("serve.requests", 1);
  }
}

void Server::WatchLoop() {
  // Drain semantics: Shutdown() raises watch_stop_ only after every worker
  // has joined, so in-flight queries stay cancellable to the very end.
  while (!watch_stop_.load(std::memory_order_acquire)) {
    {
      std::lock_guard<std::mutex> lock(watch_mu_);
      for (const WatchEntry& watch : watches_) {
        char byte;
        ssize_t rc;
        do {
          rc = ::recv(watch.fd, &byte, 1, MSG_PEEK | MSG_DONTWAIT);
        } while (rc < 0 && errno == EINTR);
        // 0 = orderly hangup; an error other than "no data yet" (a reset,
        // a bad descriptor) also means the client is gone. Pending request
        // bytes (rc == 1) mean the peer is alive.
        if (rc == 0 ||
            (rc < 0 && errno != EAGAIN && errno != EWOULDBLOCK)) {
          watch.flag->store(true, std::memory_order_relaxed);
          CSJ_METRIC_COUNT("serve.disconnect_cancels", 1);
        }
      }
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.watch_interval_ms));
  }
}

uint64_t Server::Watch(int fd, std::atomic<bool>* flag) {
  std::lock_guard<std::mutex> lock(watch_mu_);
  const uint64_t ticket = next_ticket_++;
  watches_.push_back(WatchEntry{ticket, fd, flag});
  return ticket;
}

void Server::Unwatch(uint64_t ticket) {
  std::lock_guard<std::mutex> lock(watch_mu_);
  for (size_t i = 0; i < watches_.size(); ++i) {
    if (watches_[i].ticket == ticket) {
      watches_[i] = watches_.back();
      watches_.pop_back();
      return;
    }
  }
}

void Server::HandleConnection(int fd) {
  LineReader reader(fd, options_.request_timeout_ms);
  std::string line;
  const Status read_status = reader.ReadLine(&line);
  if (!read_status.ok()) {
    WriteAll(fd, ErrorLine(read_status)).ok();
    return;
  }
  auto parsed = ParseRequest(line);
  if (!parsed.ok()) {
    WriteAll(fd, ErrorLine(parsed.status())).ok();
    return;
  }
  const Request& req = *parsed;

  if (req.op == "ping") {
    WriteAll(fd, OkLine("ping")).ok();
    return;
  }
  if (req.op == "list") {
    json::Value datasets = json::Array{};
    for (const Dataset* dataset : registry_->All()) {
      datasets.Append(DatasetInfo(*dataset));
    }
    json::Object extra;
    extra["datasets"] = datasets;
    WriteAll(fd, OkLine("list", extra)).ok();
    return;
  }

  const Dataset* dataset = registry_->Find(req.spec.dataset);
  if (dataset == nullptr) {
    WriteAll(fd, ErrorLine(Status::NotFound("unknown dataset: " +
                                            req.spec.dataset)))
        .ok();
    return;
  }
  const Dataset* dataset_b = nullptr;
  if (!req.spec.dataset_b.empty()) {
    dataset_b = registry_->Find(req.spec.dataset_b);
    if (dataset_b == nullptr) {
      WriteAll(fd, ErrorLine(Status::NotFound("unknown dataset: " +
                                              req.spec.dataset_b)))
          .ok();
      return;
    }
  }

  // Per-query governance, all of it private to this request: a deadline
  // (request value, server default, clamped by the server maximum), a
  // cancel flag raised by the disconnect watcher, and a memory budget
  // carved from the server-wide budget the block caches also charge.
  uint64_t deadline_ms = req.spec.deadline_ms != 0
                             ? req.spec.deadline_ms
                             : options_.default_deadline_ms;
  if (options_.max_deadline_ms != 0 &&
      (deadline_ms == 0 || deadline_ms > options_.max_deadline_ms)) {
    deadline_ms = options_.max_deadline_ms;
  }
  std::atomic<bool> disconnected{false};
  const uint64_t ticket = Watch(fd, &disconnected);
  MemoryBudget query_budget(req.spec.mem_budget, registry_->budget());
  ExecContext exec;
  exec.SetCancelFlag(&disconnected);
  exec.SetMemoryBudget(&query_budget);

  // The process-wide registry smears concurrent queries together; the
  // begin/end delta is this query's attributable window (see
  // metrics::DiffSnapshots — approximate under concurrency, exact alone).
  metrics::MetricsSnapshot begin;
  if (req.want_metrics) begin = metrics::Snapshot();

  const int id_width =
      dataset_b == nullptr
          ? dataset->id_width
          : std::max(dataset->id_width, dataset_b->id_width);
  if (!WriteAll(fd, HeaderLine(req.op, req.spec.output, id_width)).ok()) {
    Unwatch(ticket);
    return;
  }

  JoinStats stats;
  Status status;
  if (req.op == "range") {
    exec.SetDeadlineAfterMs(deadline_ms);
    status = RunRangeQuery(fd, req, *dataset, exec, &stats);
  } else {
    OutputSpec spec;
    spec.format = req.spec.output;
    if (req.spec.output != OutputFormat::kNone) spec.fd = fd;
    spec.id_width = id_width;
    spec.atomic = false;
    spec.budget = &query_budget;
    auto sink_result = MakeSink(spec);
    if (!sink_result.ok()) {
      Unwatch(ticket);
      WriteAll(fd, TrailerLine(sink_result.status(), stats, 0, nullptr)).ok();
      return;
    }
    std::unique_ptr<JoinSink> sink = std::move(sink_result).value();

    // "algo":"auto" — resolve against the dataset's load-time sketch. The
    // resolved plan drives execution and is echoed (with its predictions)
    // in the trailer's stats.plan. Dual joins plan against the left side.
    QuerySpec run_spec = req.spec;
    std::optional<plan::QueryPlan> query_plan;
    if (run_spec.algo == QueryAlgo::kAuto) {
      query_plan = plan::PlanQuery(run_spec, dataset->sketch, id_width);
      run_spec = query_plan->resolved;
    }

    JoinOptions options = plan::DeriveJoinOptions(run_spec);
    options.deadline_ms = deadline_ms;
    options.exec = &exec;
    const JoinAlgorithm algorithm = TreeAlgorithmFor(run_spec.algo);
    if (dataset_b != nullptr) {
      switch (algorithm) {
        case JoinAlgorithm::kSSJ:
          stats = StandardSpatialJoin(dataset->tree, dataset_b->tree, options,
                                      sink.get());
          break;
        case JoinAlgorithm::kNCSJ:
          stats = NaiveCompactSpatialJoin(dataset->tree, dataset_b->tree,
                                          options, sink.get());
          break;
        case JoinAlgorithm::kCSJ:
          stats = CompactSpatialJoin(dataset->tree, dataset_b->tree, options,
                                     sink.get());
          break;
      }
    } else {
      stats = RunSelfJoin(algorithm, dataset->tree, options, sink.get());
    }
    if (query_plan) {
      plan::AttachPlan(*query_plan, &stats);
      if (stats.status.ok()) plan::RecordPlanAccuracy(stats);
    }
    status = stats.status;
    // Unlike a one-shot file sink (where a governed stop discards the
    // artifact), a stream has no artifact to discard: always seal it, so a
    // partial binary payload still carries its EOF marker and footer and
    // the client-side structural scan terminates. The trailer's status says
    // the result is partial.
    const Status sealed = sink->Finish();
    if (status.ok()) status = sealed;
  }
  Unwatch(ticket);

  metrics::MetricsSnapshot delta;
  if (req.want_metrics) delta = DiffSnapshots(begin, metrics::Snapshot());
  WriteAll(fd, TrailerLine(status, stats, stats.output_bytes,
                           req.want_metrics ? &delta : nullptr))
      .ok();
}

}  // namespace csj::serve

#include "serve/server.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <memory>
#include <optional>

#include "core/similarity_join.h"
#include "core/sink.h"
#include "plan/planner.h"
#include "serve/protocol.h"
#include "storage/output_file.h"
#include "util/failpoint.h"
#include "util/format.h"
#include "util/metrics.h"

namespace csj::serve {

namespace {

/// Runs a governed range query (all points within eps of a center) over the
/// shared tree, streaming fixed-width ids in tree order. Counts land in the
/// JoinStats `links` / `output_bytes` fields so the trailer shape matches
/// joins.
Status RunRangeQuery(int fd, const Request& req, const Dataset& dataset,
                     const ExecContext& exec, JoinStats* stats) {
  if (req.center.size() != static_cast<size_t>(kServeDim)) {
    return Status::InvalidArgument(StrFormat(
        "center has %zu coordinates, the dataset is %d-dimensional",
        req.center.size(), kServeDim));
  }
  Point<kServeDim> center;
  for (int d = 0; d < kServeDim; ++d) center[d] = req.center[d];

  OutputFile out;
  CSJ_RETURN_IF_ERROR(out.OpenFd(fd, OutputFile::Options{.atomic = false}));

  const auto& tree = dataset.tree;
  Status result;
  std::vector<NodeId> stack;
  if (tree.Root() != kInvalidNode) stack.push_back(tree.Root());
  while (!stack.empty()) {
    if (exec.ShouldStop()) {
      result = exec.status();
      break;
    }
    const NodeId n = stack.back();
    stack.pop_back();
    if (tree.IsLeaf(n)) {
      for (const auto& entry : tree.Entries(n, &exec)) {
        if (Distance(center, entry.point) > req.spec.eps) continue;
        ++stats->links;
        result = out.Append(
            StrFormat("%0*u\n", dataset.id_width, entry.id));
        if (!result.ok()) break;
      }
      if (!result.ok()) break;
    } else {
      for (const NodeId child : tree.Children(n, &exec)) {
        if (MinDistance(center, tree.Shape(child)) <= req.spec.eps) {
          stack.push_back(child);
        }
      }
    }
  }
  stats->output_bytes = out.bytes_written();
  const Status closed = out.Close();
  return result.ok() ? closed : result;
}

json::Value DatasetInfo(const Dataset& dataset) {
  json::Value info = json::Object{};
  info["name"] = dataset.name;
  info["points"] = dataset.num_points;
  info["id_width"] = static_cast<int64_t>(dataset.id_width);
  info["source"] = dataset.source_path;
  info["epoch"] = dataset.epoch;
  return info;
}

}  // namespace

Server::Server(DatasetRegistry* registry, ServerOptions options)
    : registry_(registry), options_(std::move(options)) {}

Server::~Server() { Shutdown(); }

Status Server::Start() {
  CSJ_CHECK(!started_) << "Server::Start called twice";
  // Streaming responses rely on a hangup surfacing as EPIPE in the sink
  // (clean per-query kCancelled), never as a process-killing signal.
  std::signal(SIGPIPE, SIG_IGN);

  if (!options_.unix_socket_path.empty()) {
    struct sockaddr_un addr;
    if (options_.unix_socket_path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("socket path too long: " +
                                     options_.unix_socket_path);
    }
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return Status::IoError(std::string("socket failed: ") +
                             std::strerror(errno));
    }
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, options_.unix_socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(options_.unix_socket_path.c_str());  // stale socket from a crash
    if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      const Status status =
          Status::IoError("bind failed: " + options_.unix_socket_path + ": " +
                          std::strerror(errno));
      ::close(listen_fd_);
      listen_fd_ = -1;
      return status;
    }
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return Status::IoError(std::string("socket failed: ") +
                             std::strerror(errno));
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(options_.tcp_port));
    if (::inet_pton(AF_INET, options_.tcp_host.c_str(), &addr.sin_addr) != 1) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return Status::InvalidArgument("bad listen host: " + options_.tcp_host);
    }
    if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      const Status status = Status::IoError(
          StrFormat("bind failed: %s:%d: %s", options_.tcp_host.c_str(),
                    options_.tcp_port, std::strerror(errno)));
      ::close(listen_fd_);
      listen_fd_ = -1;
      return status;
    }
    struct sockaddr_in bound;
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&bound),
                      &bound_len) == 0) {
      bound_tcp_port_ = ntohs(bound.sin_port);
    }
  }
  if (::listen(listen_fd_, 64) != 0) {
    const Status status = Status::IoError(std::string("listen failed: ") +
                                          std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }

  started_ = true;
  acceptor_ = std::thread([this] { AcceptLoop(); });
  const int workers = options_.workers < 1 ? 1 : options_.workers;
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  watcher_ = std::thread([this] { WatchLoop(); });
  return Status::OK();
}

void Server::Shutdown() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  // Drain, not abort: stop admitting, then let every accepted query finish.
  draining_.store(true, std::memory_order_release);
  acceptor_.join();
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  watch_stop_.store(true, std::memory_order_release);
  watcher_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!options_.unix_socket_path.empty()) {
    ::unlink(options_.unix_socket_path.c_str());
  }
}

ServerCounters Server::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

void Server::AcceptLoop() {
  while (!draining_.load(std::memory_order_acquire)) {
    // Poll with a timeout instead of blocking in accept: Shutdown() only
    // has to flip `draining_` and the loop exits within one tick.
    struct pollfd pfd = {listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 100);
    if (rc < 0 && errno != EINTR) break;
    if (rc <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    if (CSJ_FAILPOINT("serve.accept")) {
      // Chaos: the connection dies between accept and admission. The client
      // sees a bare hangup (no error line) and is expected to retry.
      CSJ_METRIC_COUNT("serve.accept_faults", 1);
      ::close(fd);
      continue;
    }
    bool admitted = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!draining_.load(std::memory_order_relaxed) &&
          pending_.size() < options_.max_pending) {
        pending_.push_back(fd);
        ++counters_.accepted;
        admitted = true;
      } else {
        ++counters_.rejected;
      }
    }
    if (admitted) {
      queue_cv_.notify_one();
    } else {
      // Reject at the door with a well-formed error — bounded memory under
      // overload, and the client learns why instead of seeing a hangup.
      CSJ_METRIC_COUNT("serve.admission_rejects", 1);
      WriteAll(fd, ErrorLine(Status::ResourceExhausted(
                       "admission queue is full, try again later")))
          .ok();
      ::close(fd);
    }
  }
}

void Server::WorkerLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] {
        return !pending_.empty() || draining_.load(std::memory_order_relaxed);
      });
      if (pending_.empty()) {
        // Draining and nothing left: the queue can only shrink now.
        if (draining_.load(std::memory_order_relaxed)) return;
        continue;
      }
      fd = pending_.front();
      pending_.pop_front();
    }
    const uint64_t answered = HandleConnection(fd);
    ::close(fd);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.sessions;
      counters_.served += answered;
    }
    CSJ_METRIC_COUNT("serve.sessions", 1);
  }
}

void Server::WatchLoop() {
  // Drain semantics: Shutdown() raises watch_stop_ only after every worker
  // has joined, so in-flight queries stay cancellable to the very end.
  while (!watch_stop_.load(std::memory_order_acquire)) {
    {
      std::lock_guard<std::mutex> lock(watch_mu_);
      for (const WatchEntry& watch : watches_) {
        char byte;
        ssize_t rc;
        do {
          rc = ::recv(watch.fd, &byte, 1, MSG_PEEK | MSG_DONTWAIT);
        } while (rc < 0 && errno == EINTR);
        // 0 = orderly hangup; an error other than "no data yet" (a reset,
        // a bad descriptor) also means the client is gone. Pending request
        // bytes (rc == 1) mean the peer is alive.
        if (rc == 0 ||
            (rc < 0 && errno != EAGAIN && errno != EWOULDBLOCK)) {
          watch.flag->store(true, std::memory_order_relaxed);
          CSJ_METRIC_COUNT("serve.disconnect_cancels", 1);
        }
      }
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.watch_interval_ms));
  }
}

uint64_t Server::Watch(int fd, std::atomic<bool>* flag) {
  std::lock_guard<std::mutex> lock(watch_mu_);
  const uint64_t ticket = next_ticket_++;
  watches_.push_back(WatchEntry{ticket, fd, flag});
  return ticket;
}

void Server::Unwatch(uint64_t ticket) {
  std::lock_guard<std::mutex> lock(watch_mu_);
  for (size_t i = 0; i < watches_.size(); ++i) {
    if (watches_[i].ticket == ticket) {
      watches_[i] = watches_.back();
      watches_.pop_back();
      return;
    }
  }
}

Status Server::ReadRequestLine(LineReader* reader, int timeout_ms,
                               bool respect_drain, std::string* line) {
  // Short poll slices instead of one long poll: a drain is noticed within a
  // slice even when the peer is silent, so idle keep-alive sessions cannot
  // stall a shutdown. Bytes buffered across slices (a slow peer mid-line)
  // stay in the reader.
  constexpr int kSliceMs = 50;
  const auto start = std::chrono::steady_clock::now();
  for (;;) {
    if (respect_drain && draining_.load(std::memory_order_acquire)) {
      return Status::Unavailable("server is draining");
    }
    const int elapsed = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    if (timeout_ms >= 0 && elapsed >= timeout_ms) {
      return Status::DeadlineExceeded(
          StrFormat("peer sent nothing for %d ms", timeout_ms));
    }
    int slice = kSliceMs;
    if (timeout_ms >= 0) slice = std::min(slice, timeout_ms - elapsed);
    reader->set_timeout_ms(slice);
    const Status status = reader->ReadLine(line);
    if (status.code() == StatusCode::kDeadlineExceeded) continue;
    return status;
  }
}

bool Server::WriteCtrl(int fd, const std::string& line) {
  const Status status = WriteAll(fd, line);
  if (!status.ok()) {
    // A control-plane line (ok/error/header/trailer) the peer never saw:
    // the session's framing is gone, so the caller must close it. Silently
    // carrying on would leave the client waiting on a response that will
    // never arrive.
    CSJ_METRIC_COUNT("serve.ctrl_write_errors", 1);
  }
  return status.ok();
}

uint64_t Server::HandleConnection(int fd) {
  LineReader reader(fd, options_.request_timeout_ms);
  uint64_t served = 0;
  for (;;) {
    const int timeout_ms =
        served == 0 ? options_.request_timeout_ms : options_.idle_timeout_ms;
    std::string line;
    // The first request of an admitted connection ignores the drain flag:
    // drain means "finish admitted work", and an admitted connection that
    // has not spoken yet is still admitted work.
    const Status read_status =
        ReadRequestLine(&reader, timeout_ms, /*respect_drain=*/served > 0,
                        &line);
    if (!read_status.ok()) {
      // A served session whose peer hung up between requests is a normal
      // session end. Everything else (first-request timeout, drain, idle
      // expiry) gets a best-effort farewell line — the peer may already be
      // gone, and we are closing either way, so the result is discarded on
      // purpose.
      const bool peer_gone =
          served > 0 && read_status.code() == StatusCode::kUnavailable &&
          !draining_.load(std::memory_order_acquire);
      if (!peer_gone) WriteAll(fd, ErrorLine(read_status)).ok();
      return served;
    }
    auto parsed = ParseRequest(line);
    if (!parsed.ok()) {
      // A malformed line means the framing is no longer trustworthy: answer
      // and close (best effort, the session is over either way).
      WriteAll(fd, ErrorLine(parsed.status())).ok();
      return served;
    }
    ++served;
    CSJ_METRIC_COUNT("serve.requests", 1);
    if (!HandleRequest(fd, *parsed)) return served;
    if (options_.max_requests_per_conn > 0 &&
        served >= static_cast<uint64_t>(options_.max_requests_per_conn)) {
      return served;  // cap reached: the client reconnects through admission
    }
    if (options_.idle_timeout_ms == 0) return served;  // keep-alive disabled
  }
}

bool Server::HandleAdminOp(int fd, const Request& req) {
  DatasetSpec spec;
  spec.name = req.spec.dataset;
  spec.path = req.path;
  spec.block_size = options_.admin_block_size;
  spec.cache_blocks = options_.admin_cache_blocks;
  Status status;
  if (req.op == "load") {
    status = registry_->Load(spec);
  } else if (req.op == "reload") {
    status = registry_->Reload(spec);
  } else {
    status = registry_->Unload(spec.name);
  }
  if (!status.ok()) return WriteCtrl(fd, ErrorLine(status));
  json::Object extra;
  extra["dataset"] = spec.name;
  if (req.op != "unload") {
    if (auto dataset = registry_->Find(spec.name)) {
      extra["epoch"] = dataset->epoch;
      extra["points"] = dataset->num_points;
    }
  }
  extra["live_epochs"] = LiveEpochCount();
  return WriteCtrl(fd, OkLine(req.op, extra));
}

bool Server::HandleRequest(int fd, const Request& req) {
  if (req.op == "ping") {
    return WriteCtrl(fd, OkLine("ping"));
  }
  if (req.op == "list") {
    json::Value datasets = json::Array{};
    for (const auto& dataset : registry_->All()) {
      datasets.Append(DatasetInfo(*dataset));
    }
    json::Object extra;
    extra["datasets"] = datasets;
    // Registered epochs plus any pinned by in-flight queries or still
    // draining after an unload — the chaos harness asserts this returns to
    // baseline once load stops.
    extra["live_epochs"] = LiveEpochCount();
    return WriteCtrl(fd, OkLine("list", extra));
  }
  if (req.is_admin()) {
    return HandleAdminOp(fd, req);
  }

  // Pinning the epoch: this shared_ptr keeps the dataset (tree, block cache,
  // budget charge) alive for the whole query even if a reload swaps the
  // registry entry or an unload drops it mid-flight — the query completes
  // byte-identically on the epoch it started on.
  const std::shared_ptr<const Dataset> dataset =
      registry_->Find(req.spec.dataset);
  if (dataset == nullptr) {
    return WriteCtrl(fd, ErrorLine(Status::NotFound("unknown dataset: " +
                                                    req.spec.dataset)));
  }
  std::shared_ptr<const Dataset> dataset_b;
  if (!req.spec.dataset_b.empty()) {
    dataset_b = registry_->Find(req.spec.dataset_b);
    if (dataset_b == nullptr) {
      return WriteCtrl(fd, ErrorLine(Status::NotFound("unknown dataset: " +
                                                      req.spec.dataset_b)));
    }
  }

  // Per-query governance, all of it private to this request: a deadline
  // (request value, server default, clamped by the server maximum), a
  // cancel flag raised by the disconnect watcher, and a memory budget
  // carved from the server-wide budget the block caches also charge.
  uint64_t deadline_ms = req.spec.deadline_ms != 0
                             ? req.spec.deadline_ms
                             : options_.default_deadline_ms;
  if (options_.max_deadline_ms != 0 &&
      (deadline_ms == 0 || deadline_ms > options_.max_deadline_ms)) {
    deadline_ms = options_.max_deadline_ms;
  }
  std::atomic<bool> disconnected{false};
  const uint64_t ticket = Watch(fd, &disconnected);
  MemoryBudget query_budget(req.spec.mem_budget, registry_->budget());
  ExecContext exec;
  exec.SetCancelFlag(&disconnected);
  exec.SetMemoryBudget(&query_budget);

  // The process-wide registry smears concurrent queries together; the
  // begin/end delta is this query's attributable window (see
  // metrics::DiffSnapshots — approximate under concurrency, exact alone).
  metrics::MetricsSnapshot begin;
  if (req.want_metrics) begin = metrics::Snapshot();

  const int id_width =
      dataset_b == nullptr
          ? dataset->id_width
          : std::max(dataset->id_width, dataset_b->id_width);
  if (!WriteCtrl(fd, HeaderLine(req.op, req.spec.output, id_width))) {
    Unwatch(ticket);
    return false;
  }

  JoinStats stats;
  Status status;
  if (req.op == "range") {
    exec.SetDeadlineAfterMs(deadline_ms);
    status = RunRangeQuery(fd, req, *dataset, exec, &stats);
  } else {
    OutputSpec spec;
    spec.format = req.spec.output;
    if (req.spec.output != OutputFormat::kNone) spec.fd = fd;
    spec.id_width = id_width;
    spec.atomic = false;
    spec.budget = &query_budget;
    auto sink_result = MakeSink(spec);
    if (!sink_result.ok()) {
      Unwatch(ticket);
      return WriteCtrl(fd,
                       TrailerLine(sink_result.status(), stats, 0, nullptr));
    }
    std::unique_ptr<JoinSink> sink = std::move(sink_result).value();

    // "algo":"auto" — resolve against the dataset's load-time sketch. The
    // resolved plan drives execution and is echoed (with its predictions)
    // in the trailer's stats.plan. Dual joins plan against the left side.
    QuerySpec run_spec = req.spec;
    std::optional<plan::QueryPlan> query_plan;
    if (run_spec.algo == QueryAlgo::kAuto) {
      query_plan = plan::PlanQuery(run_spec, dataset->sketch, id_width);
      run_spec = query_plan->resolved;
    }

    JoinOptions options = plan::DeriveJoinOptions(run_spec);
    options.deadline_ms = deadline_ms;
    options.exec = &exec;
    const JoinAlgorithm algorithm = TreeAlgorithmFor(run_spec.algo);
    if (dataset_b != nullptr) {
      switch (algorithm) {
        case JoinAlgorithm::kSSJ:
          stats = StandardSpatialJoin(dataset->tree, dataset_b->tree, options,
                                      sink.get());
          break;
        case JoinAlgorithm::kNCSJ:
          stats = NaiveCompactSpatialJoin(dataset->tree, dataset_b->tree,
                                          options, sink.get());
          break;
        case JoinAlgorithm::kCSJ:
          stats = CompactSpatialJoin(dataset->tree, dataset_b->tree, options,
                                     sink.get());
          break;
      }
    } else {
      stats = RunSelfJoin(algorithm, dataset->tree, options, sink.get());
    }
    if (query_plan) {
      plan::AttachPlan(*query_plan, &stats);
      if (stats.status.ok()) plan::RecordPlanAccuracy(stats);
    }
    status = stats.status;
    // Unlike a one-shot file sink (where a governed stop discards the
    // artifact), a stream has no artifact to discard: always seal it, so a
    // partial binary payload still carries its EOF marker and footer and
    // the client-side structural scan terminates. The trailer's status says
    // the result is partial.
    const Status sealed = sink->Finish();
    if (status.ok()) status = sealed;
  }
  Unwatch(ticket);

  metrics::MetricsSnapshot delta;
  if (req.want_metrics) delta = DiffSnapshots(begin, metrics::Snapshot());
  // A payload stream that died (peer hangup, injected fault) usually
  // surfaces here too: the trailer write fails, WriteCtrl records it, and
  // the session closes instead of trying to frame another response on a
  // broken stream.
  return WriteCtrl(fd, TrailerLine(status, stats, stats.output_bytes,
                                   req.want_metrics ? &delta : nullptr));
}

}  // namespace csj::serve

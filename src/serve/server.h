#ifndef CSJ_SERVE_SERVER_H_
#define CSJ_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/registry.h"
#include "util/status.h"

/// \file
/// The csj_serve daemon core: one listener, a bounded admission queue, a
/// fixed worker pool, and per-query resource governance.
///
/// Life of a query:
///
///   accept -> admission queue -> worker -> parse -> execute -> respond
///
/// The acceptor never blocks on a client: a connection either enters the
/// bounded queue or is refused on the spot with a kResourceExhausted error
/// line — under overload the server degrades by rejecting, never by
/// growing. Each admitted query runs with its own ExecContext: a deadline
/// (client-requested, clamped to the server maximum), a cancel flag raised
/// by the disconnect watcher the moment the client hangs up, and a
/// MemoryBudget carved from the server-wide budget shared with the dataset
/// block caches. Queries never share mutable state — the trees are
/// read-only, per-query metrics come from snapshot deltas
/// (metrics::DiffSnapshots), and one query tripping its deadline or budget
/// is invisible to its neighbors.
///
/// Shutdown() (SIGTERM in the daemon) drains: the listener closes, queued
/// and in-flight queries run to completion, then the threads join. It never
/// cancels admitted work — a client that wants out disconnects, which
/// cancels just that query.

namespace csj::serve {

struct ServerOptions {
  /// Listener: a Unix-domain socket path, or a TCP port on `tcp_host` when
  /// the path is empty (port 0 binds an ephemeral port; see tcp_port()).
  std::string unix_socket_path;
  std::string tcp_host = "127.0.0.1";
  int tcp_port = 0;

  int workers = 4;            ///< concurrent query executors
  size_t max_pending = 16;    ///< admission queue bound (beyond = reject)
  uint64_t default_deadline_ms = 0;  ///< applied when a request sets none
  uint64_t max_deadline_ms = 0;      ///< clamp on requested deadlines; 0 = off
  int watch_interval_ms = 20;        ///< disconnect poll cadence
  /// A connected client must send its request line within this window, so a
  /// silent connection cannot pin a worker (and cannot stall a drain).
  int request_timeout_ms = 10000;
};

/// Monotonic counters for tests and the smoke script.
struct ServerCounters {
  uint64_t accepted = 0;   ///< connections admitted to the queue
  uint64_t rejected = 0;   ///< connections refused at admission
  uint64_t served = 0;     ///< requests answered (any terminal status)
};

class Server {
 public:
  /// The registry outlives the server. Its budget becomes the parent of
  /// every per-query budget.
  Server(DatasetRegistry* registry, ServerOptions options);
  ~Server();  ///< implies Shutdown()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the acceptor, workers and watcher. Also
  /// ignores SIGPIPE process-wide: response streaming relies on hangups
  /// surfacing as EPIPE.
  Status Start();

  /// Stops accepting, drains queued and in-flight queries, joins all
  /// threads, and removes the Unix socket file. Idempotent.
  void Shutdown();

  /// The bound TCP port (resolves port 0), or -1 on a Unix listener.
  int tcp_port() const { return bound_tcp_port_; }

  ServerCounters counters() const;

 private:
  void AcceptLoop();
  void WorkerLoop();
  void WatchLoop();
  void HandleConnection(int fd);
  /// Registers `flag` to be raised if `fd`'s peer disconnects; returns a
  /// ticket for Unwatch.
  uint64_t Watch(int fd, std::atomic<bool>* flag);
  void Unwatch(uint64_t ticket);

  DatasetRegistry* const registry_;
  const ServerOptions options_;

  int listen_fd_ = -1;
  int bound_tcp_port_ = -1;
  std::atomic<bool> draining_{false};
  std::atomic<bool> watch_stop_{false};
  bool started_ = false;
  bool stopped_ = false;

  std::thread acceptor_;
  std::vector<std::thread> workers_;
  std::thread watcher_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;  ///< accepted, not yet claimed by a worker
  ServerCounters counters_;

  struct WatchEntry {
    uint64_t ticket;
    int fd;
    std::atomic<bool>* flag;
  };
  std::mutex watch_mu_;
  std::vector<WatchEntry> watches_;
  uint64_t next_ticket_ = 1;
};

}  // namespace csj::serve

#endif  // CSJ_SERVE_SERVER_H_

#ifndef CSJ_SERVE_SERVER_H_
#define CSJ_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/registry.h"
#include "util/status.h"

/// \file
/// The csj_serve daemon core: one listener, a bounded admission queue, a
/// fixed worker pool, keep-alive sessions, and per-query resource
/// governance.
///
/// Life of a session:
///
///   accept -> admission queue -> worker -> [parse -> execute -> respond]*
///
/// The acceptor never blocks on a client: a connection either enters the
/// bounded queue or is refused on the spot with a kResourceExhausted error
/// line — under overload the server degrades by rejecting, never by
/// growing. An admitted connection is a **session**: it may issue any
/// number of framed requests back to back, each governed independently
/// (per-request ExecContext, deadline, cancel flag, child MemoryBudget).
/// Two guards keep slow peers from pinning workers: an idle timeout between
/// requests (`idle_timeout_ms`; the first request gets
/// `request_timeout_ms`) and a per-connection request cap
/// (`max_requests_per_conn`), after which the session is closed and the
/// client must reconnect — re-entering admission, where overload control
/// lives. Queries never share mutable state — each pins the refcounted
/// dataset epoch it started on (serve/registry.h), per-query metrics come
/// from snapshot deltas (metrics::DiffSnapshots), and one query tripping
/// its deadline or budget is invisible to its neighbors.
///
/// The admin ops (`load`/`reload`/`unload`) run on the same workers and
/// drive the registry's epoch lifecycle; a reload validates the new epoch
/// fully before the atomic swap, so queries racing a reload either pin the
/// old epoch or the new one — never a broken in-between.
///
/// Shutdown() (SIGTERM in the daemon) drains: the listener closes, queued
/// connections and the in-flight request of every session run to
/// completion, then the session is closed (an idle keep-alive session is
/// told `Unavailable` and closed — clients retry against the next
/// incarnation). It never cancels admitted work — a client that wants out
/// disconnects, which cancels just that query.

namespace csj::serve {

struct Request;
class LineReader;

struct ServerOptions {
  /// Listener: a Unix-domain socket path, or a TCP port on `tcp_host` when
  /// the path is empty (port 0 binds an ephemeral port; see tcp_port()).
  std::string unix_socket_path;
  std::string tcp_host = "127.0.0.1";
  int tcp_port = 0;

  int workers = 4;            ///< concurrent query executors
  size_t max_pending = 16;    ///< admission queue bound (beyond = reject)
  uint64_t default_deadline_ms = 0;  ///< applied when a request sets none
  uint64_t max_deadline_ms = 0;      ///< clamp on requested deadlines; 0 = off
  int watch_interval_ms = 20;        ///< disconnect poll cadence
  /// A connected client must send its first request line within this
  /// window, so a silent connection cannot pin a worker (and cannot stall a
  /// drain).
  int request_timeout_ms = 10000;
  /// Keep-alive: how long a session may sit idle between requests before
  /// the server closes it. 0 = no keep-alive (one request per connection).
  int idle_timeout_ms = 10000;
  /// Keep-alive: requests served on one connection before it is closed and
  /// the client must reconnect (re-entering admission). 0 = unlimited.
  int max_requests_per_conn = 256;
  /// Conversion defaults for datasets registered through the load/reload
  /// admin ops (startup loads carry their own DatasetSpec).
  uint32_t admin_block_size = 4096;
  size_t admin_cache_blocks = 1024;
};

/// Monotonic counters for tests and the smoke script.
struct ServerCounters {
  uint64_t accepted = 0;   ///< connections admitted to the queue
  uint64_t rejected = 0;   ///< connections refused at admission
  uint64_t sessions = 0;   ///< connections fully handled by a worker
  uint64_t served = 0;     ///< requests answered (any terminal status)
};

class Server {
 public:
  /// The registry outlives the server. Its budget becomes the parent of
  /// every per-query budget.
  Server(DatasetRegistry* registry, ServerOptions options);
  ~Server();  ///< implies Shutdown()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the acceptor, workers and watcher. Also
  /// ignores SIGPIPE process-wide: response streaming relies on hangups
  /// surfacing as EPIPE.
  Status Start();

  /// Stops accepting, drains queued and in-flight queries, joins all
  /// threads, and removes the Unix socket file. Idempotent.
  void Shutdown();

  /// The bound TCP port (resolves port 0), or -1 on a Unix listener.
  int tcp_port() const { return bound_tcp_port_; }

  ServerCounters counters() const;

 private:
  void AcceptLoop();
  void WorkerLoop();
  void WatchLoop();
  /// Serves one keep-alive session; returns the number of requests
  /// answered.
  uint64_t HandleConnection(int fd);
  /// Serves one parsed request. Returns true when the session may carry
  /// another request, false when it must close (control-plane write
  /// failure, or a payload stream died).
  bool HandleRequest(int fd, const Request& req);
  bool HandleAdminOp(int fd, const Request& req);
  /// Waits for the next request line: `timeout_ms` overall, polled in short
  /// slices so a drain is noticed within one slice. `respect_drain` makes a
  /// drain end the wait with kUnavailable (idle keep-alive sessions);
  /// the first request of an admitted connection waits the full window even
  /// while draining, preserving drain-serves-queued-work semantics.
  Status ReadRequestLine(LineReader* reader, int timeout_ms,
                         bool respect_drain, std::string* line);
  /// Checked control-plane write: on failure records
  /// `serve.ctrl_write_errors` and returns false so the caller closes the
  /// session instead of continuing against a dead peer.
  bool WriteCtrl(int fd, const std::string& line);
  /// Registers `flag` to be raised if `fd`'s peer disconnects; returns a
  /// ticket for Unwatch.
  uint64_t Watch(int fd, std::atomic<bool>* flag);
  void Unwatch(uint64_t ticket);

  DatasetRegistry* const registry_;
  const ServerOptions options_;

  int listen_fd_ = -1;
  int bound_tcp_port_ = -1;
  std::atomic<bool> draining_{false};
  std::atomic<bool> watch_stop_{false};
  bool started_ = false;
  bool stopped_ = false;

  std::thread acceptor_;
  std::vector<std::thread> workers_;
  std::thread watcher_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;  ///< accepted, not yet claimed by a worker
  ServerCounters counters_;

  struct WatchEntry {
    uint64_t ticket;
    int fd;
    std::atomic<bool>* flag;
  };
  std::mutex watch_mu_;
  std::vector<WatchEntry> watches_;
  uint64_t next_ticket_ = 1;
};

}  // namespace csj::serve

#endif  // CSJ_SERVE_SERVER_H_

#include "serve/registry.h"

#include <unistd.h>

#include <utility>

#include "core/sink.h"
#include "data/dataset.h"
#include "data/point_io.h"
#include "index/bulk_load.h"
#include "index/node_access.h"
#include "index/rstar_tree.h"
#include "index/spatial_index.h"
#include "index/tree_io.h"
#include "util/format.h"

namespace csj::serve {

namespace {

/// Lays an in-memory tree out as a temporary paged image, opens it, and
/// unlinks the temporary: the returned PagedTree's descriptor is the only
/// remaining reference, so the image can never outlive the process.
Result<PagedTree<kServeDim>> OpenAsPaged(const RStarTree<kServeDim>& tree,
                                         const DatasetSpec& spec,
                                         MemoryBudget* budget) {
  PagedTreeOptions options;
  options.block_size = spec.block_size;
  options.cache_blocks = spec.cache_blocks;
  options.budget = budget;
  const std::string temp =
      StrFormat("%s.paged.tmp.%d", spec.path.c_str(), getpid());
  CSJ_RETURN_IF_ERROR(WritePagedTree(tree, temp, options));
  auto paged = PagedTree<kServeDim>::Open(temp, options);
  ::unlink(temp.c_str());
  return paged;
}

}  // namespace

Status DatasetRegistry::Load(const DatasetSpec& spec) {
  if (spec.name.empty()) {
    return Status::InvalidArgument("dataset name must not be empty");
  }
  if (datasets_.count(spec.name) != 0) {
    return Status::InvalidArgument("duplicate dataset name: " + spec.name);
  }

  PagedTreeOptions options;
  options.block_size = spec.block_size;
  options.cache_blocks = spec.cache_blocks;
  options.budget = &budget_;

  // Source sniffing, cheapest first: an already-paged image is opened in
  // place; a serialized tree is loaded and converted; anything else is
  // treated as a point text file, bulk-loaded and converted.
  Result<PagedTree<kServeDim>> paged =
      PagedTree<kServeDim>::Open(spec.path, options);
  if (!paged.ok()) {
    if (paged.status().code() == StatusCode::kNotFound) return paged.status();
    auto info = PeekTreeFile(spec.path);
    if (info.ok()) {
      RStarOptions tree_options;
      tree_options.max_fanout = info->max_fanout;
      tree_options.min_fanout = info->min_fanout;
      RStarTree<kServeDim> tree(tree_options);
      CSJ_RETURN_IF_ERROR(LoadTree(&tree, spec.path));
      paged = OpenAsPaged(tree, spec, &budget_);
    } else {
      CSJ_ASSIGN_OR_RETURN(auto points, LoadPoints<kServeDim>(spec.path));
      RStarTree<kServeDim> tree;
      PackStr(&tree, ToEntries(points));
      paged = OpenAsPaged(tree, spec, &budget_);
    }
  }
  CSJ_RETURN_IF_ERROR(paged.status());

  auto dataset = std::make_unique<Dataset>(std::move(paged).value());
  dataset->name = spec.name;
  dataset->source_path = spec.path;
  dataset->num_points = dataset->tree.size();
  dataset->id_width = IdWidthFor(dataset->num_points);

  // Planner sketch: one deterministic stride sample over the leaves in DFS
  // order (every query over this dataset plans against the same sketch).
  // The DFS touches each page once through the block cache and nothing is
  // retained beyond ~4k sample points.
  const plan::SketchOptions sketch_options;
  const size_t stride = std::max<uint64_t>(
      1, dataset->num_points / sketch_options.sample_size);
  std::vector<Point2> sample;
  sample.reserve(sketch_options.sample_size + 1);
  uint64_t index = 0;
  if (dataset->tree.Root() != kInvalidNode) {
    ForEachEntryInSubtree(
        dataset->tree, dataset->tree.Root(),
        static_cast<NodeAccessTracker*>(nullptr),
        [&](const Entry<kServeDim>& e) {
          if (index++ % stride == 0) sample.push_back(e.point);
        });
  }
  dataset->sketch = plan::BuildSketchFromSample(
      std::move(sample), dataset->num_points, sketch_options);

  datasets_.emplace(spec.name, std::move(dataset));
  return Status::OK();
}

const Dataset* DatasetRegistry::Find(const std::string& name) const {
  auto it = datasets_.find(name);
  return it == datasets_.end() ? nullptr : it->second.get();
}

std::vector<const Dataset*> DatasetRegistry::All() const {
  std::vector<const Dataset*> all;
  all.reserve(datasets_.size());
  for (const auto& [name, dataset] : datasets_) all.push_back(dataset.get());
  return all;
}

}  // namespace csj::serve

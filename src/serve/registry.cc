#include "serve/registry.h"

#include <unistd.h>

#include <utility>

#include "core/sink.h"
#include "data/dataset.h"
#include "data/point_io.h"
#include "index/bulk_load.h"
#include "index/node_access.h"
#include "index/rstar_tree.h"
#include "index/spatial_index.h"
#include "index/tree_io.h"
#include "util/failpoint.h"
#include "util/format.h"
#include "util/metrics.h"

namespace csj::serve {

namespace {

std::atomic<int64_t> g_live_epochs{0};

/// Lays an in-memory tree out as a temporary paged image, opens it, and
/// unlinks the temporary — on success *and* on failure: the returned
/// PagedTree's descriptor is the only remaining reference, so the image can
/// never outlive the process, and a failed conversion leaves no droppings.
Result<PagedTree<kServeDim>> OpenAsPaged(const RStarTree<kServeDim>& tree,
                                         const DatasetSpec& spec,
                                         uint64_t temp_seq,
                                         MemoryBudget* budget) {
  PagedTreeOptions options;
  options.block_size = spec.block_size;
  options.cache_blocks = spec.cache_blocks;
  options.budget = budget;
  const std::string temp =
      StrFormat("%s.paged.tmp.%d.%llu", spec.path.c_str(), getpid(),
                static_cast<unsigned long long>(temp_seq));
  const Status written = WritePagedTree(tree, temp, options);
  if (!written.ok()) {
    ::unlink(temp.c_str());
    return written;
  }
  auto paged = PagedTree<kServeDim>::Open(temp, options);
  ::unlink(temp.c_str());
  return paged;
}

}  // namespace

int64_t LiveEpochCount() {
  return g_live_epochs.load(std::memory_order_relaxed);
}

Dataset::Dataset(PagedTree<kServeDim> t) : tree(std::move(t)) {
  const int64_t live = g_live_epochs.fetch_add(1, std::memory_order_relaxed) + 1;
  CSJ_METRIC_GAUGE_SET("serve.live_epochs", static_cast<uint64_t>(live));
}

Dataset::~Dataset() {
  const int64_t live = g_live_epochs.fetch_sub(1, std::memory_order_relaxed) - 1;
  CSJ_METRIC_GAUGE_SET("serve.live_epochs",
                       static_cast<uint64_t>(live < 0 ? 0 : live));
}

Result<std::shared_ptr<Dataset>> DatasetRegistry::BuildEpoch(
    const DatasetSpec& spec) {
  if (spec.name.empty()) {
    return Status::InvalidArgument("dataset name must not be empty");
  }

  PagedTreeOptions options;
  options.block_size = spec.block_size;
  options.cache_blocks = spec.cache_blocks;
  options.budget = &budget_;

  // Source sniffing, cheapest first: an already-paged image is opened in
  // place; a serialized tree is loaded and converted; anything else is
  // treated as a point text file, bulk-loaded and converted. Both the tree
  // loader (CSJTREE2 CRC) and the paged open (header shape) validate their
  // input before any epoch exists.
  const uint64_t temp_seq = temp_seq_.fetch_add(1, std::memory_order_relaxed);
  Result<PagedTree<kServeDim>> paged =
      PagedTree<kServeDim>::Open(spec.path, options);
  if (!paged.ok()) {
    if (paged.status().code() == StatusCode::kNotFound) return paged.status();
    auto info = PeekTreeFile(spec.path);
    if (info.ok()) {
      RStarOptions tree_options;
      tree_options.max_fanout = info->max_fanout;
      tree_options.min_fanout = info->min_fanout;
      RStarTree<kServeDim> tree(tree_options);
      CSJ_RETURN_IF_ERROR(LoadTree(&tree, spec.path));
      paged = OpenAsPaged(tree, spec, temp_seq, &budget_);
    } else {
      CSJ_ASSIGN_OR_RETURN(auto points, LoadPoints<kServeDim>(spec.path));
      RStarTree<kServeDim> tree;
      PackStr(&tree, ToEntries(points));
      paged = OpenAsPaged(tree, spec, temp_seq, &budget_);
    }
  }
  CSJ_RETURN_IF_ERROR(paged.status());

  auto dataset = std::make_shared<Dataset>(std::move(paged).value());
  dataset->name = spec.name;
  dataset->source_path = spec.path;
  dataset->num_points = dataset->tree.size();
  dataset->id_width = IdWidthFor(dataset->num_points);

  // Validation probe + planner sketch in one pass: a governed DFS over
  // every leaf (one deterministic stride sample retained). Reading every
  // page through the block cache proves the image is fully readable and
  // charges the cache against the registry budget *before* the epoch can
  // be swapped in — a truncated blob area, an injected read fault, or
  // budget exhaustion all surface here as a clean error while the old
  // epoch (if any) keeps serving.
  ExecContext probe_exec;
  probe_exec.SetMemoryBudget(&budget_);
  const plan::SketchOptions sketch_options;
  const size_t stride = std::max<uint64_t>(
      1, dataset->num_points / sketch_options.sample_size);
  std::vector<Point2> sample;
  sample.reserve(sketch_options.sample_size + 1);
  uint64_t index = 0;
  if (dataset->tree.Root() != kInvalidNode) {
    ForEachEntryInSubtree(
        dataset->tree, dataset->tree.Root(),
        static_cast<NodeAccessTracker*>(nullptr),
        [&](const Entry<kServeDim>& e) {
          if (index++ % stride == 0) sample.push_back(e.point);
        },
        &probe_exec);
  }
  if (probe_exec.ShouldStopNow()) return probe_exec.status();
  if (index != dataset->num_points) {
    return Status::DataLoss(StrFormat(
        "validation probe read %llu of %llu points in %s",
        static_cast<unsigned long long>(index),
        static_cast<unsigned long long>(dataset->num_points),
        spec.path.c_str()));
  }
  dataset->sketch = plan::BuildSketchFromSample(
      std::move(sample), dataset->num_points, sketch_options);

  dataset->epoch = next_epoch_.fetch_add(1, std::memory_order_relaxed);
  return dataset;
}

Status DatasetRegistry::Load(const DatasetSpec& spec) {
  CSJ_ASSIGN_OR_RETURN(std::shared_ptr<Dataset> dataset, BuildEpoch(spec));
  std::lock_guard<std::mutex> lock(mu_);
  if (!datasets_.emplace(spec.name, std::move(dataset)).second) {
    return Status::InvalidArgument("duplicate dataset name: " + spec.name +
                                   " (use reload to replace)");
  }
  return Status::OK();
}

Status DatasetRegistry::Reload(const DatasetSpec& spec) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (datasets_.find(spec.name) == datasets_.end()) {
      return Status::NotFound("unknown dataset: " + spec.name +
                              " (use load to register)");
    }
  }
  if (CSJ_FAILPOINT("serve.reload_validate")) {
    CSJ_METRIC_COUNT("serve.reload_failures", 1);
    return Status::IoError("injected reload validation fault: " + spec.name);
  }
  auto built = BuildEpoch(spec);
  if (!built.ok()) {
    CSJ_METRIC_COUNT("serve.reload_failures", 1);
    return built.status();
  }
  std::shared_ptr<Dataset> old;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = datasets_.find(spec.name);
    if (it == datasets_.end()) {
      // Unloaded while we were building: registering the replacement now
      // would resurrect a name the operator just dropped.
      return Status::NotFound("dataset unloaded during reload: " + spec.name);
    }
    old = std::move(it->second);
    it->second = std::move(built).value();
  }
  CSJ_METRIC_COUNT("serve.reloads", 1);
  // `old` (the previous epoch's last registry pin) drops here; queries that
  // pinned it keep it alive until they finish.
  return Status::OK();
}

Status DatasetRegistry::Unload(const std::string& name) {
  std::shared_ptr<Dataset> old;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = datasets_.find(name);
    if (it == datasets_.end()) {
      return Status::NotFound("unknown dataset: " + name);
    }
    old = std::move(it->second);
    datasets_.erase(it);
  }
  CSJ_METRIC_COUNT("serve.unloads", 1);
  // In-flight pins drain naturally; the epoch's block-cache budget charge is
  // released by ~Dataset when the last pin drops.
  return Status::OK();
}

std::shared_ptr<const Dataset> DatasetRegistry::Find(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = datasets_.find(name);
  return it == datasets_.end() ? nullptr : it->second;
}

std::vector<std::shared_ptr<const Dataset>> DatasetRegistry::All() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<const Dataset>> all;
  all.reserve(datasets_.size());
  for (const auto& [name, dataset] : datasets_) all.push_back(dataset);
  return all;
}

size_t DatasetRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return datasets_.size();
}

}  // namespace csj::serve

#ifndef CSJ_SERVE_REGISTRY_H_
#define CSJ_SERVE_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "index/paged_tree.h"
#include "plan/estimator.h"
#include "util/exec_context.h"
#include "util/status.h"

/// \file
/// Named dataset registry: the shared state csj_serve reads on every query,
/// organized as refcounted immutable *epochs* so datasets can be replaced
/// while queries are in flight.
///
/// Each registered name maps to one epoch: an immutable, fully-validated
/// `Dataset` (a disk-resident PagedTree plus the planner's sketch) held by
/// `shared_ptr`. A query pins the epoch it starts on via `Find()` and keeps
/// that pin for its whole run, so the bytes it streams are decided entirely
/// by its own epoch — a concurrent `Reload` swapping in epoch N+1 is
/// invisible to a query that started on epoch N, which completes
/// byte-identically to a one-shot run over the old image.
///
/// Admin lifecycle:
///
///   * `Load`   — register a new name. The replacement is built and
///     validated *fully* (open, header/CRC checks, and a governed full leaf
///     walk that doubles as the sketch sample) before it becomes visible.
///   * `Reload` — replace an existing name. Validation happens on the new
///     epoch while the old one keeps serving; only after the new epoch is
///     good is the map entry atomically swapped. A failed reload changes
///     nothing — the old epoch serves on.
///   * `Unload` — drop a name. In-flight queries still hold their pins; the
///     epoch's memory (block cache charges against the registry budget) is
///     released only when the last pin drops.
///
/// Sources that are not already paged — a CSJTREE1/2 index file or a raw
/// point file — are converted at load time: the tree is materialized in
/// memory, laid out into a temporary paged image next to the source, opened,
/// and the temporary is unlinked immediately (also on every failure path),
/// so the open descriptor is the only reference and nothing can leak.
/// WritePagedTree preserves child order, which is what keeps a served join's
/// output byte-identical to a one-shot csj_tool run over the same index.
///
/// All block caches charge one registry-wide MemoryBudget, which the server
/// also parents every per-query budget under — a single ceiling governs the
/// whole process.
///
/// Thread safety: every method is safe from any thread (admin ops arrive on
/// server workers while queries look names up). Epoch construction and
/// validation run outside the registry lock; only the final map swap holds
/// it.

namespace csj::serve {

/// The server is 2-D, like csj_tool (the common GIS case); the underlying
/// library is dimension-generic.
inline constexpr int kServeDim = 2;

/// One dataset to load or reload.
struct DatasetSpec {
  std::string name;
  /// A CSJPAGE1 paged image, a CSJTREE1/2 index, or a point text file
  /// (tried in that order by sniffing the content).
  std::string path;
  uint32_t block_size = 4096;   ///< layout block size when converting
  size_t cache_blocks = 1024;   ///< per-dataset block cache capacity
};

/// Number of live `Dataset` epochs in the process (every construction
/// increments, every destruction decrements; also exported as the
/// `serve.live_epochs` gauge). The chaos harness asserts this returns to
/// its baseline once reload churn stops — the epoch-leak check.
int64_t LiveEpochCount();

/// One immutable epoch of a dataset: the shared read-only tree plus display
/// facts and the planner's sketch. Never mutated after registration.
struct Dataset {
  std::string name;
  std::string source_path;
  uint64_t epoch = 0;  ///< registry-wide monotonic generation number
  uint64_t num_points = 0;
  int id_width = 0;
  PagedTree<kServeDim> tree;

  /// Built once at load time from a deterministic stride sample of the
  /// tree's leaves; read-only afterwards, so "algo":"auto" queries plan
  /// concurrently without touching the disk image.
  plan::DatasetSketch sketch;

  explicit Dataset(PagedTree<kServeDim> t);
  ~Dataset();
  Dataset(const Dataset&) = delete;
  Dataset& operator=(const Dataset&) = delete;
};

class DatasetRegistry {
 public:
  /// `memory_budget_bytes` caps block caches *and* (via the server) every
  /// per-query reservation; 0 = unlimited.
  explicit DatasetRegistry(uint64_t memory_budget_bytes = 0)
      : budget_(memory_budget_bytes) {}

  DatasetRegistry(const DatasetRegistry&) = delete;
  DatasetRegistry& operator=(const DatasetRegistry&) = delete;

  /// Builds, validates and registers a new dataset. Duplicate names are an
  /// error (use Reload to replace). On failure nothing is registered and no
  /// temp files remain.
  Status Load(const DatasetSpec& spec);

  /// Replaces an existing dataset with a freshly built and validated epoch.
  /// The swap is atomic: until the new epoch has passed every check the old
  /// one keeps serving, and a failure leaves the registry untouched.
  /// In-flight queries keep streaming from the epoch they pinned.
  Status Reload(const DatasetSpec& spec);

  /// Unregisters `name`. Queries that already pinned the epoch finish
  /// normally; its memory is released when the last pin drops.
  Status Unload(const std::string& name);

  /// Pins and returns the current epoch of `name`, or nullptr when the name
  /// is unknown. Hold the returned pointer for the whole query: it is the
  /// epoch pin.
  std::shared_ptr<const Dataset> Find(const std::string& name) const;

  /// Pins of all current epochs, sorted by name.
  std::vector<std::shared_ptr<const Dataset>> All() const;

  /// Registered names (current epochs only), for logs and tests.
  size_t size() const;

  /// The registry-wide budget (thread-safe; shared with the server).
  MemoryBudget* budget() { return &budget_; }

 private:
  /// Builds and fully validates one epoch outside the lock. Temp images
  /// created by conversion never survive this call, success or failure.
  Result<std::shared_ptr<Dataset>> BuildEpoch(const DatasetSpec& spec);

  MemoryBudget budget_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Dataset>> datasets_;
  std::atomic<uint64_t> next_epoch_{1};
  std::atomic<uint64_t> temp_seq_{0};  ///< unique temp names under concurrency
};

}  // namespace csj::serve

#endif  // CSJ_SERVE_REGISTRY_H_

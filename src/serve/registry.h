#ifndef CSJ_SERVE_REGISTRY_H_
#define CSJ_SERVE_REGISTRY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "index/paged_tree.h"
#include "plan/estimator.h"
#include "util/exec_context.h"
#include "util/status.h"

/// \file
/// Named dataset registry: the read-only state csj_serve shares across
/// every concurrent query.
///
/// Each dataset is one disk-resident PagedTree (CSJPAGE1), opened once and
/// then read by any number of queries at the same time (PagedTree is
/// pread-based and its BufferPool pins pages, so concurrent reads are safe
/// by construction). Sources that are not already paged — a CSJTREE1/2
/// index file or a raw point file — are converted at load time: the tree is
/// materialized in memory, laid out into a temporary paged image next to
/// the source, opened, and the temporary is unlinked immediately, so the
/// open descriptor is the only reference and nothing can leak on exit.
/// WritePagedTree preserves child order, which is what keeps a served
/// join's output byte-identical to a one-shot csj_tool run over the same
/// index.
///
/// All block caches charge one registry-wide MemoryBudget, which the server
/// also parents every per-query budget under — a single ceiling governs the
/// whole process.
///
/// Loading happens before serving starts and is not thread-safe; lookups
/// afterwards are const and lock-free.

namespace csj::serve {

/// The server is 2-D, like csj_tool (the common GIS case); the underlying
/// library is dimension-generic.
inline constexpr int kServeDim = 2;

/// One dataset to load at startup.
struct DatasetSpec {
  std::string name;
  /// A CSJPAGE1 paged image, a CSJTREE1/2 index, or a point text file
  /// (tried in that order by sniffing the content).
  std::string path;
  uint32_t block_size = 4096;   ///< layout block size when converting
  size_t cache_blocks = 1024;   ///< per-dataset block cache capacity
};

/// A loaded dataset: the shared read-only tree plus display facts and the
/// planner's sketch.
struct Dataset {
  std::string name;
  std::string source_path;
  uint64_t num_points = 0;
  int id_width = 0;
  PagedTree<kServeDim> tree;

  /// Built once at load time from a deterministic stride sample of the
  /// tree's leaves; read-only afterwards, so "algo":"auto" queries plan
  /// concurrently without touching the disk image.
  plan::DatasetSketch sketch;

  explicit Dataset(PagedTree<kServeDim> t) : tree(std::move(t)) {}
};

class DatasetRegistry {
 public:
  /// `memory_budget_bytes` caps block caches *and* (via the server) every
  /// per-query reservation; 0 = unlimited.
  explicit DatasetRegistry(uint64_t memory_budget_bytes = 0)
      : budget_(memory_budget_bytes) {}

  DatasetRegistry(const DatasetRegistry&) = delete;
  DatasetRegistry& operator=(const DatasetRegistry&) = delete;

  /// Loads (converting if necessary) and registers one dataset. Duplicate
  /// names are an error. Not thread-safe; call before serving.
  Status Load(const DatasetSpec& spec);

  /// nullptr when the name is unknown. Safe from any thread once loading
  /// is done.
  const Dataset* Find(const std::string& name) const;

  /// All datasets, sorted by name.
  std::vector<const Dataset*> All() const;

  /// The registry-wide budget (thread-safe; shared with the server).
  MemoryBudget* budget() { return &budget_; }

 private:
  MemoryBudget budget_;
  std::map<std::string, std::unique_ptr<Dataset>> datasets_;
};

}  // namespace csj::serve

#endif  // CSJ_SERVE_REGISTRY_H_

#include "serve/protocol.h"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "geom/kernels.h"
#include "storage/binary_format.h"
#include "util/failpoint.h"
#include "util/format.h"

namespace csj::serve {

namespace {

/// Status codes travel as their symbolic names so clients never parse
/// message text.
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kUnavailable:
      return "Unavailable";
    default:
      return "Error";
  }
}

Status FieldError(const std::string& field, const std::string& why) {
  return Status::InvalidArgument("request field '" + field + "': " + why);
}

}  // namespace

Result<Request> ParseRequest(const std::string& line) {
  CSJ_ASSIGN_OR_RETURN(json::Value doc, json::Parse(line));
  if (!doc.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  Request req;
  // The protocol envelope owns op/metrics/center; every other key is a
  // QuerySpec field and goes through its strict parser, which also rejects
  // unknown fields (a typo'd knob silently ignored would be worse than an
  // error).
  json::Value spec_doc = json::Object{};
  for (const auto& [key, value] : doc.AsObject()) {
    if (key == "op") {
      if (!value.is_string()) return FieldError(key, "expected a string");
      req.op = value.AsString();
    } else if (key == "metrics") {
      if (!value.is_bool()) return FieldError(key, "expected a bool");
      req.want_metrics = value.AsBool();
    } else if (key == "center") {
      if (!value.is_array()) return FieldError(key, "expected an array");
      for (const auto& c : value.AsArray()) {
        if (!c.is_number()) return FieldError(key, "expected numbers");
        req.center.push_back(c.AsDouble());
      }
    } else if (key == "path") {
      if (!value.is_string()) return FieldError(key, "expected a string");
      req.path = value.AsString();
    } else {
      spec_doc[key] = value;
    }
  }
  CSJ_ASSIGN_OR_RETURN(req.spec, QuerySpec::FromJson(spec_doc));
  if (IsEgoAlgo(req.spec.algo)) {
    // The ego family needs raw points; served datasets are paged trees.
    return FieldError("algo", "must be auto, ssj, ncsj or csj");
  }
  if (req.op.empty()) {
    return Status::InvalidArgument("request is missing 'op'");
  }
  if (req.op != "ping" && req.op != "list" && req.op != "join" &&
      req.op != "range" && !req.is_admin()) {
    return FieldError("op",
                      "must be ping, list, join, range, load, reload or "
                      "unload");
  }
  if (!req.path.empty() && req.op != "load" && req.op != "reload") {
    return FieldError("path", "only meaningful for load/reload");
  }
  if (req.is_admin()) {
    if (req.spec.dataset.empty()) return FieldError("dataset", "required");
    if (req.path.empty() && req.op != "unload") {
      return FieldError("path", "required");
    }
    if (!req.center.empty()) {
      return FieldError("center", "not meaningful for an admin op");
    }
  }
  if (req.op == "join" || req.op == "range") {
    if (req.spec.dataset.empty()) return FieldError("dataset", "required");
    if (req.spec.eps <= 0.0) return FieldError("eps", "must be positive");
    if (req.spec.window < 1) return FieldError("g", "must be at least 1");
  }
  if (req.op == "range") {
    if (req.center.empty()) return FieldError("center", "required");
    if (req.spec.algo == QueryAlgo::kAuto) {
      return FieldError("algo", "range queries have nothing to plan");
    }
    if (req.spec.output != OutputFormat::kText) {
      return FieldError("output", "range queries are text-only");
    }
    if (!req.spec.dataset_b.empty()) {
      return FieldError("dataset_b", "not meaningful for a range query");
    }
  }
  return req;
}

std::string ErrorLine(const Status& status) {
  json::Value doc = json::Object{};
  doc["ok"] = false;
  doc["code"] = CodeName(status.code());
  doc["error"] = status.message();
  return json::Write(doc) + "\n";
}

std::string OkLine(const std::string& op, const json::Object& extra) {
  json::Value doc(extra);
  doc["ok"] = true;
  doc["op"] = op;
  return json::Write(doc) + "\n";
}

std::string HeaderLine(const std::string& op, OutputFormat format,
                       int id_width) {
  json::Value doc = json::Object{};
  doc["ok"] = true;
  doc["op"] = op;
  doc["format"] = OutputFormatName(format);
  doc["id_width"] = static_cast<int64_t>(id_width);
  return json::Write(doc) + "\n";
}

std::string TrailerLine(const Status& status, const JoinStats& stats,
                        uint64_t payload_bytes,
                        const metrics::MetricsSnapshot* delta) {
  json::Value doc = json::Object{};
  doc["ok"] = status.ok();
  doc["done"] = true;
  doc["code"] = CodeName(status.code());
  if (!status.ok()) doc["error"] = status.message();
  doc["payload_bytes"] = payload_bytes;
  doc["stats"] = stats.ToJsonValue();
  if (delta != nullptr) doc["metrics"] = delta->ToJsonValue();
  return json::Write(doc) + "\n";
}

Status LineReader::Refill() {
  if (timeout_ms_ >= 0) {
    struct pollfd pfd = {fd_, POLLIN, 0};
    int rc;
    do {
      rc = ::poll(&pfd, 1, timeout_ms_);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) {
      return Status::IoError(std::string("poll failed: ") +
                             std::strerror(errno));
    }
    if (rc == 0) {
      return Status::DeadlineExceeded(
          StrFormat("peer sent nothing for %d ms", timeout_ms_));
    }
  }
  char chunk[4096];
  ssize_t n;
  do {
    n = ::read(fd_, chunk, sizeof(chunk));
  } while (n < 0 && errno == EINTR);
  if (n < 0) {
    return Status::IoError(std::string("read failed: ") +
                           std::strerror(errno));
  }
  if (n == 0) return Status::Unavailable("peer closed the connection");
  buffer_.append(chunk, static_cast<size_t>(n));
  return Status::OK();
}

Status LineReader::ReadLine(std::string* line) {
  for (;;) {
    const size_t nl = buffer_.find('\n', pos_);
    if (nl != std::string::npos) {
      line->assign(buffer_, pos_, nl - pos_);
      pos_ = nl + 1;
      // Compact occasionally so a long-lived reader does not hold the whole
      // history of the stream.
      if (pos_ > (1 << 16)) {
        buffer_.erase(0, pos_);
        pos_ = 0;
      }
      return Status::OK();
    }
    if (buffer_.size() - pos_ > kMaxLine) {
      return Status::InvalidArgument("line exceeds the protocol limit");
    }
    CSJ_RETURN_IF_ERROR(Refill());
  }
}

Status LineReader::ReadExact(char* out, size_t size) {
  size_t done = 0;
  while (done < size) {
    if (pos_ < buffer_.size()) {
      const size_t take = std::min(size - done, buffer_.size() - pos_);
      std::memcpy(out + done, buffer_.data() + pos_, take);
      pos_ += take;
      done += take;
      continue;
    }
    buffer_.clear();
    pos_ = 0;
    CSJ_RETURN_IF_ERROR(Refill());
  }
  return Status::OK();
}

Status StreamFramedPayload(LineReader* reader, OutputFormat format,
                           const std::function<Status(const char*, size_t)>&
                               write,
                           std::string* trailer_line) {
  if (format == OutputFormat::kText) {
    std::string line;
    for (;;) {
      CSJ_RETURN_IF_ERROR(reader->ReadLine(&line));
      if (!line.empty() && line[0] == '{') {
        *trailer_line = line;
        return Status::OK();
      }
      line.push_back('\n');
      CSJ_RETURN_IF_ERROR(write(line.data(), line.size()));
    }
  }
  if (format == OutputFormat::kBinary) {
    // Walk the CSJ2 structure: file header, length-prefixed blocks, the
    // all-zero EOF marker, the fixed-size footer. Everything read is
    // forwarded verbatim so the payload stays byte-identical.
    std::string chunk(binfmt::kFileHeaderBytes, '\0');
    CSJ_RETURN_IF_ERROR(reader->ReadExact(chunk.data(), chunk.size()));
    int id_width = 0;
    CSJ_RETURN_IF_ERROR(
        binfmt::ParseFileHeader(chunk.data(), chunk.size(), &id_width));
    CSJ_RETURN_IF_ERROR(write(chunk.data(), chunk.size()));
    for (;;) {
      chunk.resize(binfmt::kBlockHeaderBytes);
      CSJ_RETURN_IF_ERROR(reader->ReadExact(chunk.data(), chunk.size()));
      const binfmt::BlockHeader header = binfmt::ParseBlockHeader(chunk.data());
      CSJ_RETURN_IF_ERROR(write(chunk.data(), chunk.size()));
      if (header.IsEofMarker()) break;
      chunk.resize(header.payload_bytes);
      CSJ_RETURN_IF_ERROR(reader->ReadExact(chunk.data(), chunk.size()));
      CSJ_RETURN_IF_ERROR(write(chunk.data(), chunk.size()));
    }
    chunk.resize(binfmt::kFooterBytes);
    CSJ_RETURN_IF_ERROR(reader->ReadExact(chunk.data(), chunk.size()));
    CSJ_RETURN_IF_ERROR(write(chunk.data(), chunk.size()));
    return reader->ReadLine(trailer_line);
  }
  // kNone: no payload, the trailer follows the header directly.
  return reader->ReadLine(trailer_line);
}

Status ReadFramedPayload(LineReader* reader, OutputFormat format,
                         std::string* payload, std::string* trailer_line) {
  return StreamFramedPayload(
      reader, format,
      [payload](const char* data, size_t size) {
        payload->append(data, size);
        return Status::OK();
      },
      trailer_line);
}

Status WriteAll(int fd, const char* data, size_t size) {
  if (CSJ_FAILPOINT("serve.write")) {
    return Status::Unavailable("injected write fault");
  }
  size_t done = 0;
  while (done < size) {
    ssize_t n;
    do {
      n = ::write(fd, data + done, size - done);
    } while (n < 0 && errno == EINTR);
    if (n < 0) {
      if (errno == EPIPE) {
        return Status::Cancelled("peer closed the connection");
      }
      return Status::IoError(std::string("write failed: ") +
                             std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace csj::serve

#include "storage/buffer_pool.h"

#include <algorithm>
#include <iterator>

#include "util/check.h"
#include "util/format.h"
#include "util/metrics.h"

namespace csj {

BufferPoolSim::BufferPoolSim(size_t capacity_pages)
    : capacity_(capacity_pages) {
  CSJ_CHECK(capacity_pages >= 1);
}

void BufferPoolSim::Access(uint64_t page) {
  ++stats_.requests;
  CSJ_METRIC_COUNT("buffer_pool.requests", 1);
  auto it = index_.find(page);
  if (it != index_.end()) {
    ++stats_.hits;
    CSJ_METRIC_COUNT("buffer_pool.hits", 1);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  ++stats_.disk_reads;
  CSJ_METRIC_COUNT("buffer_pool.misses", 1);
  lru_.push_front(page);
  index_[page] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back());
    lru_.pop_back();
  }
}

void BufferPoolSim::Reset() {
  stats_ = BufferPoolStats();
  lru_.clear();
  index_.clear();
}

std::string BufferPoolSim::Summary() const {
  return StrFormat("requests=%llu hits=%llu disk_reads=%llu hit_rate=%.2f%%",
                   static_cast<unsigned long long>(stats_.requests),
                   static_cast<unsigned long long>(stats_.hits),
                   static_cast<unsigned long long>(stats_.disk_reads),
                   100.0 * stats_.HitRate());
}

// --- BufferPool -------------------------------------------------------------

BufferPool::BufferPool(const Options& options)
    : capacity_(std::max<size_t>(options.capacity_pages, 1)),
      budget_(options.budget) {}

BufferPool::~BufferPool() {
  // No PageRef may outlive the pool; release every remaining charge.
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto& [page, slot] : shard.map) {
      CSJ_CHECK(slot.second->pins.load(std::memory_order_acquire) == 0)
          << "BufferPool destroyed with page " << page << " still pinned";
      if (budget_ != nullptr && slot.second->charge > 0) {
        budget_->Release(slot.second->charge);
      }
    }
  }
}

void BufferPool::Erase(Shard& shard, std::list<uint64_t>::iterator lru_it) {
  auto it = shard.map.find(*lru_it);
  CSJ_CHECK(it != shard.map.end());
  if (budget_ != nullptr && it->second.second->charge > 0) {
    budget_->Release(it->second.second->charge);
  }
  shard.map.erase(it);
  shard.lru.erase(lru_it);
  resident_.fetch_sub(1, std::memory_order_relaxed);
}

void BufferPool::EnforceCapacity(Shard& shard) {
  // The capacity is global but eviction is shard-local (no nested shard
  // locks): evict from this shard's cold end while the pool as a whole is
  // over target. Hashing balances shards over time.
  while (resident_.load(std::memory_order_relaxed) > capacity_ &&
         !shard.lru.empty()) {
    auto victim = shard.lru.end();
    bool found = false;
    for (auto it = std::prev(shard.lru.end());; --it) {
      const auto& slot = shard.map.at(*it);
      if (slot.second->pins.load(std::memory_order_acquire) == 0) {
        victim = it;
        found = true;
        break;
      }
      if (it == shard.lru.begin()) break;
    }
    if (!found) return;  // everything pinned: overcommit rather than block
    Erase(shard, victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

size_t BufferPool::ShedClean() {
  size_t dropped = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      auto next = std::next(it);
      const auto& slot = shard.map.at(*it);
      if (slot.second->pins.load(std::memory_order_acquire) == 0) {
        Erase(shard, it);
        ++dropped;
      }
      it = next;
    }
  }
  if (dropped > 0) {
    sheds_.fetch_add(dropped, std::memory_order_relaxed);
    CSJ_METRIC_COUNT("resource.pool_sheds", dropped);
  }
  return dropped;
}

Result<BufferPool::PageRef> BufferPool::Fetch(uint64_t page,
                                              const Loader& loader) {
  Shard& shard = shards_[ShardIndex(page)];
  requests_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(page);
    if (it != shard.map.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.first);
      it->second.second->pins.fetch_add(1, std::memory_order_relaxed);
      return PageRef(it->second.second);
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
  }

  // Load outside the lock so one slow read does not serialize the shard.
  auto frame = std::make_shared<Frame>();
  const Status loaded = loader(page, &frame->data);
  if (!loaded.ok()) {
    load_errors_.fetch_add(1, std::memory_order_relaxed);
    return loaded;
  }
  frame->charge = frame->data.size() + kFrameOverheadBytes;
  if (budget_ != nullptr && !budget_->TryReserve(frame->charge)) {
    // Graceful degradation: all resident pages are clean, so shed them and
    // retry before reporting exhaustion.
    if (ShedClean() == 0 || !budget_->TryReserve(frame->charge)) {
      denials_.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted(StrFormat(
          "buffer pool cannot reserve %llu bytes for page %llu even after "
          "shedding clean pages",
          static_cast<unsigned long long>(frame->charge),
          static_cast<unsigned long long>(page)));
    }
  }

  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(page);
  if (it != shard.map.end()) {
    // Another thread loaded the same page while we were reading: keep the
    // resident copy, discard ours.
    races_.fetch_add(1, std::memory_order_relaxed);
    if (budget_ != nullptr) budget_->Release(frame->charge);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.first);
    it->second.second->pins.fetch_add(1, std::memory_order_relaxed);
    return PageRef(it->second.second);
  }
  frame->pins.store(1, std::memory_order_relaxed);
  shard.lru.push_front(page);
  shard.map.emplace(page, std::make_pair(shard.lru.begin(), frame));
  resident_.fetch_add(1, std::memory_order_relaxed);
  insertions_.fetch_add(1, std::memory_order_relaxed);
  EnforceCapacity(shard);
  return PageRef(std::move(frame));
}

BufferPool::StatsSnapshot BufferPool::stats() const {
  StatsSnapshot s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  s.load_errors = load_errors_.load(std::memory_order_relaxed);
  s.races = races_.load(std::memory_order_relaxed);
  s.denials = denials_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.sheds = sheds_.load(std::memory_order_relaxed);
  s.resident_pages = resident_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace csj

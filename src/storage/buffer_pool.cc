#include "storage/buffer_pool.h"

#include "util/check.h"
#include "util/format.h"
#include "util/metrics.h"

namespace csj {

BufferPoolSim::BufferPoolSim(size_t capacity_pages)
    : capacity_(capacity_pages) {
  CSJ_CHECK(capacity_pages >= 1);
}

void BufferPoolSim::Access(uint64_t page) {
  ++stats_.requests;
  CSJ_METRIC_COUNT("buffer_pool.requests", 1);
  auto it = index_.find(page);
  if (it != index_.end()) {
    ++stats_.hits;
    CSJ_METRIC_COUNT("buffer_pool.hits", 1);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  ++stats_.disk_reads;
  CSJ_METRIC_COUNT("buffer_pool.misses", 1);
  lru_.push_front(page);
  index_[page] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back());
    lru_.pop_back();
  }
}

void BufferPoolSim::Reset() {
  stats_ = BufferPoolStats();
  lru_.clear();
  index_.clear();
}

std::string BufferPoolSim::Summary() const {
  return StrFormat("requests=%llu hits=%llu disk_reads=%llu hit_rate=%.2f%%",
                   static_cast<unsigned long long>(stats_.requests),
                   static_cast<unsigned long long>(stats_.hits),
                   static_cast<unsigned long long>(stats_.disk_reads),
                   100.0 * stats_.HitRate());
}

}  // namespace csj

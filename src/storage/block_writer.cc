#include "storage/block_writer.h"

#include <utility>

#include "util/metrics.h"

namespace csj {

AsyncBlockWriter::AsyncBlockWriter(OutputFile* file, const Options& options)
    : file_(file),
      max_queued_(options.max_queued_blocks > 0 ? options.max_queued_blocks
                                                : 1),
      thread_([this] { ThreadMain(); }) {}

AsyncBlockWriter::~AsyncBlockWriter() {
  // Abandoned without Finish(): stop the thread; the OutputFile's own
  // destructor discards the partial file.
  (void)Finish();
}

std::string AsyncBlockWriter::GetBuffer() {
  std::lock_guard<std::mutex> lock(mu_);
  if (free_list_.empty()) return std::string();
  std::string buffer = std::move(free_list_.back());
  free_list_.pop_back();
  buffer.clear();
  return buffer;
}

void AsyncBlockWriter::Submit(std::string block) {
  if (block.empty()) return;
  std::unique_lock<std::mutex> lock(mu_);
  if (failed_.load(std::memory_order_relaxed)) {
    // The file is gone; recycle the buffer and keep the producer moving so
    // it can observe the error through the sink's sticky status.
    free_list_.push_back(std::move(block));
    return;
  }
  queue_not_full_.wait(lock, [this] {
    return queue_.size() < max_queued_ ||
           failed_.load(std::memory_order_relaxed);
  });
  if (failed_.load(std::memory_order_relaxed)) {
    free_list_.push_back(std::move(block));
    return;
  }
  queue_.push_back(std::move(block));
  CSJ_METRIC_COUNT("block_writer.submitted", 1);
  queue_not_empty_.notify_one();
}

Status AsyncBlockWriter::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  // On failure ThreadMain clears the queue and drops writing_ after the
  // losing append, so this predicate terminates in every case.
  queue_drained_.wait(lock, [this] { return queue_.empty() && !writing_; });
  return status_;
}

Status AsyncBlockWriter::Finish() {
  if (finished_) {
    std::lock_guard<std::mutex> lock(mu_);
    return status_;
  }
  finished_ = true;
  {
    std::lock_guard<std::mutex> lock(mu_);
    done_ = true;
  }
  queue_not_empty_.notify_one();
  if (thread_.joinable()) thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  return status_;
}

void AsyncBlockWriter::ThreadMain() {
  for (;;) {
    std::string block;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_not_empty_.wait(lock, [this] { return done_ || !queue_.empty(); });
      if (queue_.empty()) return;  // done_ and drained
      block = std::move(queue_.front());
      queue_.pop_front();
      writing_ = true;
    }
    // Appends outside the lock so the producer can keep encoding. OutputFile
    // errors are sticky, and Fail() already deleted the partial file.
    const Status status = file_->Append(block);
    if (status.ok()) {
      bytes_submitted_.fetch_add(block.size(), std::memory_order_relaxed);
      CSJ_METRIC_COUNT("block_writer.flushed_bytes", block.size());
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!status.ok() && status_.ok()) {
        status_ = status;
        failed_.store(true, std::memory_order_relaxed);
        CSJ_METRIC_COUNT("block_writer.errors", 1);
        queue_.clear();  // nothing further can land; unblock the producer
      }
      free_list_.push_back(std::move(block));
      writing_ = false;
      if (queue_.empty()) queue_drained_.notify_all();
    }
    queue_not_full_.notify_one();
  }
}

}  // namespace csj

#include "storage/output_file.h"

#include <vector>

#include "util/check.h"

namespace csj {

OutputFile::~OutputFile() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Status OutputFile::Open(const std::string& path) {
  CSJ_CHECK(file_ == nullptr) << "OutputFile already open: " << path_;
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) return Status::IoError("cannot open for write: " + path);
  // A generous stdio buffer keeps write syscalls off the join's hot path,
  // matching what a tuned DB output writer would do.
  std::setvbuf(file_, nullptr, _IOFBF, 1 << 20);
  path_ = path;
  bytes_written_ = 0;
  return Status::OK();
}

void OutputFile::Append(const char* data, size_t size) {
  CSJ_DCHECK(file_ != nullptr);
  const size_t written = std::fwrite(data, 1, size, file_);
  CSJ_CHECK_EQ(written, size) << "short write to " << path_;
  bytes_written_ += size;
}

Status OutputFile::Close() {
  if (file_ == nullptr) return Status::OK();
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) return Status::IoError("close failed: " + path_);
  return Status::OK();
}

}  // namespace csj

#include "storage/output_file.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/check.h"
#include "util/failpoint.h"
#include "util/format.h"
#include "util/metrics.h"

namespace csj {

namespace {

std::string ErrnoSuffix() {
  return errno != 0 ? std::string(": ") + std::strerror(errno) : std::string();
}

}  // namespace

OutputFile::~OutputFile() {
  // Destruction without a successful Close() means the writer was abandoned
  // (error path or early exit): discard the partial file rather than leaving
  // truncated output that looks like a complete result.
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
    std::remove(write_path_.c_str());
  }
}

Status OutputFile::Open(const std::string& path, const Options& options) {
  CSJ_CHECK(file_ == nullptr) << "OutputFile already open: " << path_;
  path_ = path;
  options_ = options;
  write_path_ = options.atomic
                    ? StrFormat("%s.tmp.%d", path.c_str(), getpid())
                    : path;
  status_ = Status::OK();
  bytes_written_ = 0;
  errno = 0;
  if (CSJ_FAILPOINT("output_file.open")) {
    return Fail(Status::IoError("injected open fault: " + write_path_));
  }
  file_ = std::fopen(write_path_.c_str(), "wb");
  if (file_ == nullptr) {
    status_ = Status::IoError("cannot open for write: " + write_path_ +
                              ErrnoSuffix());
    return status_;
  }
  // A generous stdio buffer keeps write syscalls off the join's hot path,
  // matching what a tuned DB output writer would do.
  std::setvbuf(file_, nullptr, _IOFBF, 1 << 20);
  return Status::OK();
}

Status OutputFile::Append(const char* data, size_t size) {
  if (file_ == nullptr) {
    if (!status_.ok()) return status_;  // sticky error from Open/Append/Close
    return Status::FailedPrecondition("append to closed file: " + path_);
  }
  CSJ_METRIC_SCOPED_TIMER("output_file.append_ns");
  errno = 0;
  size_t written;
  if (CSJ_FAILPOINT("output_file.append")) {
    // Simulated short write: half the payload lands, then the device fails.
    written = std::fwrite(data, 1, size / 2, file_);
  } else {
    written = std::fwrite(data, 1, size, file_);
  }
  bytes_written_ += written;
  CSJ_METRIC_COUNT("output_file.appends", 1);
  CSJ_METRIC_COUNT("output_file.bytes", written);
  if (written != size) {
    return Fail(Status::IoError(
        StrFormat("short write to %s (%zu of %zu bytes)%s",
                  write_path_.c_str(), written, size,
                  std::ferror(file_) != 0 ? ErrnoSuffix().c_str() : "")));
  }
  return Status::OK();
}

Status OutputFile::Close() {
  if (file_ == nullptr) return status_;  // never opened, failed, or closed
  errno = 0;
  if (CSJ_FAILPOINT("output_file.flush") || std::fflush(file_) != 0) {
    return Fail(Status::IoError("flush failed: " + write_path_ +
                                ErrnoSuffix()));
  }
  if (options_.sync_on_close) {
    if (CSJ_FAILPOINT("output_file.sync") || ::fsync(fileno(file_)) != 0) {
      return Fail(Status::IoError("fsync failed: " + write_path_ +
                                  ErrnoSuffix()));
    }
  }
  const int close_rc = std::fclose(file_);
  file_ = nullptr;
  if (CSJ_FAILPOINT("output_file.close") || close_rc != 0) {
    status_ = Status::IoError("close failed: " + write_path_ + ErrnoSuffix());
    std::remove(write_path_.c_str());
    return status_;
  }
  if (options_.atomic) {
    if (CSJ_FAILPOINT("output_file.rename") ||
        std::rename(write_path_.c_str(), path_.c_str()) != 0) {
      status_ = Status::IoError("rename failed: " + write_path_ + " -> " +
                                path_ + ErrnoSuffix());
      std::remove(write_path_.c_str());
      return status_;
    }
  }
  return Status::OK();
}

Status OutputFile::Fail(Status status) {
  if (status_.ok()) {
    CSJ_METRIC_COUNT("output_file.errors", 1);
    status_ = std::move(status);
  }
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  std::remove(write_path_.c_str());
  return status_;
}

}  // namespace csj

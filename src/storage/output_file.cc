#include "storage/output_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/check.h"
#include "util/failpoint.h"
#include "util/format.h"
#include "util/metrics.h"

namespace csj {

namespace {

std::string ErrnoSuffix() {
  return errno != 0 ? std::string(": ") + std::strerror(errno) : std::string();
}

}  // namespace

OutputFile::~OutputFile() {
  // Destruction without a successful Close() means the writer was abandoned
  // (error path or early exit): discard the partial file rather than leaving
  // truncated output that looks like a complete result — except for
  // checkpointed files, whose committed prefix a resume will reclaim.
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
    RemoveWritePath();
  }
}

void OutputFile::RemoveWritePath() {
  if (!options_.preserve_on_error) std::remove(write_path_.c_str());
}

Status OutputFile::Open(const std::string& path, const Options& options) {
  CSJ_CHECK(file_ == nullptr) << "OutputFile already open: " << path_;
  path_ = path;
  options_ = options;
  write_path_ = options.atomic
                    ? StrFormat("%s.tmp.%d", path.c_str(), getpid())
                    : path;
  status_ = Status::OK();
  bytes_written_ = 0;
  errno = 0;
  if (CSJ_FAILPOINT("output_file.open")) {
    return Fail(Status::IoError("injected open fault: " + write_path_));
  }
  file_ = std::fopen(write_path_.c_str(), "wb");
  if (file_ == nullptr) {
    status_ = Status::IoError("cannot open for write: " + write_path_ +
                              ErrnoSuffix());
    return status_;
  }
  // A generous stdio buffer keeps write syscalls off the join's hot path,
  // matching what a tuned DB output writer would do.
  std::setvbuf(file_, nullptr, _IOFBF, 1 << 20);
  return Status::OK();
}

Status OutputFile::OpenFd(int fd, const Options& options) {
  CSJ_CHECK(file_ == nullptr) << "OutputFile already open: " << path_;
  CSJ_CHECK(!options.atomic)
      << "atomic commit is a rename; a stream descriptor has no name";
  path_ = StrFormat("<fd:%d>", fd);
  options_ = options;
  options_.preserve_on_error = true;  // nothing on disk to delete
  write_path_ = path_;
  status_ = Status::OK();
  bytes_written_ = 0;
  errno = 0;
  if (CSJ_FAILPOINT("output_file.open")) {
    return Fail(Status::IoError("injected open fault: " + write_path_));
  }
  const int owned = ::dup(fd);
  if (owned < 0) {
    status_ = Status::IoError("cannot dup descriptor: " + path_ +
                              ErrnoSuffix());
    return status_;
  }
  file_ = ::fdopen(owned, "wb");
  if (file_ == nullptr) {
    status_ = Status::IoError("cannot fdopen: " + path_ + ErrnoSuffix());
    ::close(owned);
    return status_;
  }
  std::setvbuf(file_, nullptr, _IOFBF, 1 << 20);
  return Status::OK();
}

Status OutputFile::OpenForResume(const std::string& path, uint64_t keep_bytes,
                                 const Options& options) {
  CSJ_CHECK(file_ == nullptr) << "OutputFile already open: " << path_;
  CSJ_CHECK(!options.atomic)
      << "resume writes directly to the destination; atomic mode would "
         "start a fresh temporary and orphan the checkpointed bytes";
  path_ = path;
  options_ = options;
  options_.preserve_on_error = true;  // resumable output is never auto-deleted
  write_path_ = path;
  status_ = Status::OK();
  bytes_written_ = 0;
  errno = 0;
  if (CSJ_FAILPOINT("output_file.open")) {
    return Fail(Status::IoError("injected open fault: " + write_path_));
  }
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    status_ = Status::NotFound("cannot resume: output file missing: " + path +
                               ErrnoSuffix());
    return status_;
  }
  if (static_cast<uint64_t>(st.st_size) < keep_bytes) {
    // The checkpoint claims more durable bytes than the file holds — the
    // manifest and the output are out of step; resuming would corrupt.
    status_ = Status::FailedPrecondition(StrFormat(
        "cannot resume: %s holds %lld bytes but the checkpoint committed "
        "%llu",
        path.c_str(), static_cast<long long>(st.st_size),
        static_cast<unsigned long long>(keep_bytes)));
    return status_;
  }
  if (::truncate(path.c_str(), static_cast<off_t>(keep_bytes)) != 0) {
    status_ = Status::IoError("cannot truncate for resume: " + path +
                              ErrnoSuffix());
    return status_;
  }
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    status_ = Status::IoError("cannot open for resume: " + path +
                              ErrnoSuffix());
    return status_;
  }
  std::setvbuf(file_, nullptr, _IOFBF, 1 << 20);
  bytes_written_ = keep_bytes;
  CSJ_METRIC_COUNT("output_file.resumes", 1);
  return Status::OK();
}

Status OutputFile::Append(const char* data, size_t size) {
  if (file_ == nullptr) {
    if (!status_.ok()) return status_;  // sticky error from Open/Append/Close
    return Status::FailedPrecondition("append to closed file: " + path_);
  }
  CSJ_METRIC_SCOPED_TIMER("output_file.append_ns");
  RetryController retry(options_.retry);
  size_t done = 0;
  for (;;) {
    const size_t want = size - done;
    errno = 0;
    size_t written;
    bool injected_hard = false;
    bool injected_transient = false;
    if (CSJ_FAILPOINT("output_file.append")) {
      // Simulated hard short write: half the payload lands, then the device
      // fails permanently. Never retried.
      injected_hard = true;
      written = std::fwrite(data + done, 1, want / 2, file_);
    } else if (CSJ_FAILPOINT("output_file.append_transient")) {
      // Simulated transient short write: half lands, the rest is retried by
      // the backoff policy (arm with prob:P to model a flaky device).
      injected_transient = true;
      written = std::fwrite(data + done, 1, want / 2, file_);
    } else {
      written = std::fwrite(data + done, 1, want, file_);
    }
    const int write_errno = errno;
    bytes_written_ += written;
    done += written;
    CSJ_METRIC_COUNT("output_file.appends", 1);
    CSJ_METRIC_COUNT("output_file.bytes", written);
    // An injected fault writes a strict prefix (want/2 < want), so reaching
    // `size` means every byte genuinely landed.
    if (done == size) return Status::OK();
    if (!injected_hard && !injected_transient && write_errno == EPIPE) {
      // The reader hung up (`| head`, a client disconnect). That is a
      // consumer decision, not a device fault: no retry (the pipe stays
      // broken), no IoError — a clean sticky kCancelled the join unwinds on.
      CSJ_METRIC_COUNT("output_file.epipe_cancels", 1);
      return Fail(Status::Cancelled(StrFormat(
          "output consumer closed the stream: %s (%zu of %zu bytes)",
          write_path_.c_str(), done, size)));
    }
    if (injected_transient ||
        (!injected_hard && IsTransientErrno(write_errno))) {
      // Retry only the not-yet-landed suffix after a jittered backoff.
      std::clearerr(file_);
      if (retry.BackoffBeforeRetry()) continue;
      return Fail(Status::Unavailable(StrFormat(
          "write to %s still failing after %d retries (%zu of %zu bytes)",
          write_path_.c_str(), retry.retries(), done, size)));
    }
    return Fail(Status::IoError(
        StrFormat("short write to %s (%zu of %zu bytes)%s",
                  write_path_.c_str(), done, size,
                  std::ferror(file_) != 0 ? ErrnoSuffix().c_str() : "")));
  }
}

Status OutputFile::Flush() {
  if (file_ == nullptr) {
    if (!status_.ok()) return status_;
    return Status::FailedPrecondition("flush of closed file: " + path_);
  }
  errno = 0;
  if (CSJ_FAILPOINT("output_file.flush") || std::fflush(file_) != 0) {
    if (errno == EPIPE) {
      CSJ_METRIC_COUNT("output_file.epipe_cancels", 1);
      return Fail(Status::Cancelled("output consumer closed the stream: " +
                                    write_path_));
    }
    return Fail(Status::IoError("flush failed: " + write_path_ +
                                ErrnoSuffix()));
  }
  return Status::OK();
}

Status OutputFile::Sync() {
  CSJ_RETURN_IF_ERROR(Flush());
  errno = 0;
  if (CSJ_FAILPOINT("output_file.sync") || ::fsync(fileno(file_)) != 0) {
    return Fail(Status::IoError("fsync failed: " + write_path_ +
                                ErrnoSuffix()));
  }
  return Status::OK();
}

Status OutputFile::SyncContainingDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  std::string dir =
      slash == std::string::npos ? std::string(".") : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  errno = 0;
  if (CSJ_FAILPOINT("output_file.dirsync")) {
    return Status::IoError("injected directory fsync fault: " + dir);
  }
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::IoError("cannot open directory for fsync: " + dir +
                           ErrnoSuffix());
  }
  Status status;
  if (::fsync(fd) != 0) {
    status = Status::IoError("directory fsync failed: " + dir + ErrnoSuffix());
  }
  ::close(fd);
  return status;
}

Status OutputFile::Close() {
  if (file_ == nullptr) return status_;  // never opened, failed, or closed
  errno = 0;
  if (CSJ_FAILPOINT("output_file.flush") || std::fflush(file_) != 0) {
    if (errno == EPIPE) {
      CSJ_METRIC_COUNT("output_file.epipe_cancels", 1);
      return Fail(Status::Cancelled("output consumer closed the stream: " +
                                    write_path_));
    }
    return Fail(Status::IoError("flush failed: " + write_path_ +
                                ErrnoSuffix()));
  }
  if (options_.sync_on_close) {
    if (CSJ_FAILPOINT("output_file.sync") || ::fsync(fileno(file_)) != 0) {
      return Fail(Status::IoError("fsync failed: " + write_path_ +
                                  ErrnoSuffix()));
    }
  }
  const int close_rc = std::fclose(file_);
  file_ = nullptr;
  if (CSJ_FAILPOINT("output_file.close") || close_rc != 0) {
    status_ = Status::IoError("close failed: " + write_path_ + ErrnoSuffix());
    RemoveWritePath();
    return status_;
  }
  if (options_.atomic) {
    if (CSJ_FAILPOINT("output_file.rename") ||
        std::rename(write_path_.c_str(), path_.c_str()) != 0) {
      status_ = Status::IoError("rename failed: " + write_path_ + " -> " +
                                path_ + ErrnoSuffix());
      RemoveWritePath();
      return status_;
    }
  }
  if (options_.sync_on_close) {
    // The file's own fsync persisted its *contents*; the new directory entry
    // (created by open in non-atomic mode, by the commit rename in atomic
    // mode) lives in the parent directory and needs its own fsync, or an
    // atomically committed file can vanish on power loss. The destination is
    // already in place, so a dirsync failure reports reduced durability but
    // deletes nothing.
    const Status dir_status = SyncContainingDir(path_);
    if (!dir_status.ok()) {
      CSJ_METRIC_COUNT("output_file.errors", 1);
      status_ = dir_status;
      return status_;
    }
  }
  return Status::OK();
}

Status OutputFile::Fail(Status status) {
  if (status_.ok()) {
    CSJ_METRIC_COUNT("output_file.errors", 1);
    status_ = std::move(status);
  }
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  RemoveWritePath();
  return status_;
}

}  // namespace csj

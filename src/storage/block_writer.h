#ifndef CSJ_STORAGE_BLOCK_WRITER_H_
#define CSJ_STORAGE_BLOCK_WRITER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "storage/output_file.h"
#include "util/status.h"

/// \file
/// Background flusher for sealed output blocks.
///
/// For output-bound joins the write path dominates wall time, so the binary
/// sink overlaps encoding with disk I/O: the join thread encodes records
/// into a block buffer and, when the block seals, hands it to a dedicated
/// writer thread that appends it through OutputFile. The queue is bounded
/// (double buffering by default), which gives natural backpressure — the
/// join never races more than `max_queued_blocks` ahead of the disk — and
/// buffers are recycled through a free list so the steady state allocates
/// nothing.
///
/// Failure model: the writer thread inherits OutputFile's sticky-error and
/// failpoint semantics (the `output_file.*` failpoints fire on the writer
/// thread). The first append error is latched; `ok()` flips to false (a
/// relaxed atomic the producer polls per record), later submissions are
/// discarded so the producer never blocks on a dead file, and Finish()
/// returns the original error. OutputFile itself already deleted the partial
/// file when the append failed, so a failed writer leaves no output behind.

namespace csj {

/// Appends byte buffers to an OutputFile from a background thread.
/// One producer thread; the writer thread is owned by this object.
class AsyncBlockWriter {
 public:
  struct Options {
    /// Sealed blocks allowed in flight before Submit() blocks. 2 = classic
    /// double buffering (one block being written, one being filled).
    size_t max_queued_blocks = 2;
  };

  /// `file` must be open and must outlive this writer.
  explicit AsyncBlockWriter(OutputFile* file) : AsyncBlockWriter(file, Options()) {}
  AsyncBlockWriter(OutputFile* file, const Options& options);
  ~AsyncBlockWriter();

  AsyncBlockWriter(const AsyncBlockWriter&) = delete;
  AsyncBlockWriter& operator=(const AsyncBlockWriter&) = delete;

  /// Returns a recycled buffer (cleared, capacity retained) or a fresh one.
  std::string GetBuffer();

  /// Hands `block` to the writer thread. Blocks while the queue is full;
  /// discards the block if the writer has already failed.
  void Submit(std::string block);

  /// False once any append has failed. Cheap enough to poll per record.
  bool ok() const { return !failed_.load(std::memory_order_relaxed); }

  /// The sticky write status (OK while healthy). Takes the lock; intended
  /// for the slow path after ok() flips false, and after Finish().
  Status status() const {
    std::lock_guard<std::mutex> lock(mu_);
    return status_;
  }

  /// Blocks until every submitted block has been handed to OutputFile (or
  /// the writer has failed) without stopping the writer thread. Checkpoints
  /// call this before fsyncing: after an OK Drain(), bytes_submitted() is the
  /// exact sealed-block prefix sitting in the file's buffers.
  Status Drain();

  /// Drains the queue, joins the writer thread, and returns the sticky
  /// write status. Idempotent; the file is left open (the caller owns
  /// Close() and its atomic-rename commit).
  Status Finish();

  /// Bytes handed to OutputFile so far (writer-thread view; exact after
  /// Finish()).
  uint64_t bytes_submitted() const {
    return bytes_submitted_.load(std::memory_order_relaxed);
  }

 private:
  void ThreadMain();

  OutputFile* file_;
  const size_t max_queued_;

  mutable std::mutex mu_;
  std::condition_variable queue_not_full_;
  std::condition_variable queue_not_empty_;
  std::condition_variable queue_drained_;
  std::deque<std::string> queue_;       // guarded by mu_
  std::vector<std::string> free_list_;  // guarded by mu_
  bool done_ = false;                   // guarded by mu_
  bool writing_ = false;                // guarded by mu_; append in flight
  Status status_;                       // guarded by mu_; first error wins

  std::atomic<bool> failed_{false};
  std::atomic<uint64_t> bytes_submitted_{0};
  bool finished_ = false;  // producer-thread only
  std::thread thread_;
};

}  // namespace csj

#endif  // CSJ_STORAGE_BLOCK_WRITER_H_

#ifndef CSJ_STORAGE_CHECKPOINT_H_
#define CSJ_STORAGE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "geom/point.h"
#include "util/status.h"

/// \file
/// Durable checkpoint manifests for long-running joins ("CSJK" format v1).
///
/// A checkpointed join (core/checkpoint_join.h) periodically snapshots
/// everything needed to continue after a crash, kill or deadline:
///
///  * the traversal frontier — the index of the next unprocessed work item
///    in the deterministic task list (serial) or task round (parallel);
///  * the CSJ(g) merge window — the pending groups that have not been
///    emitted yet (serial mode; parallel rounds flush their windows);
///  * cumulative JoinStats work counters and curated metric counters, so a
///    resumed run reports exactly what an uninterrupted run would;
///  * the sink position — a durable byte offset at a committed CSJ2 block
///    boundary (binary) or record boundary (text), plus the payload of the
///    still-open block, so resumed block sealing stays byte-identical.
///
/// The manifest is written via OutputFile's atomic temp+rename commit with
/// fsync (file and directory), so at every instant the manifest on disk is
/// either the previous complete checkpoint or the new complete checkpoint.
/// A version header, explicit payload length and a CRC-32 over the payload
/// make truncation, bit rot and trailing garbage detectable: Parse() returns
/// a clean Status for any corruption, never crashes, and a resumed run
/// refuses to silently restart from zero.
///
/// Layout (little-endian):
///
///   Manifest := magic "CSJK" | version u32 | payload_len u64
///             | crc32(payload) u32 | payload
///
/// The payload is a fixed field sequence of varints (LEB128, shared with the
/// CSJ2 format) and fixed64 bit patterns for doubles; see Serialize() for
/// the order. docs/ROBUSTNESS.md ("Checkpoint & resume") is the normative
/// description.

namespace csj::checkpoint {

inline constexpr char kMagic[4] = {'C', 'S', 'J', 'K'};
inline constexpr uint32_t kVersion = 1;
/// magic + version + payload_len + payload crc.
inline constexpr size_t kHeaderBytes = 4 + 4 + 8 + 4;

/// Cumulative JoinStats state (work counters + implied links + timing).
/// Output counters live in SinkState — the sink is their source of truth.
struct StatsState {
  uint64_t distance_computations = 0;
  uint64_t kernel_candidates = 0;
  uint64_t kernel_pruned = 0;
  uint64_t kernel_hits = 0;
  uint64_t node_accesses = 0;
  uint64_t page_requests = 0;
  uint64_t page_disk_reads = 0;
  uint64_t early_stops = 0;
  uint64_t merge_attempts = 0;
  uint64_t merges = 0;
  uint64_t implied_links = 0;
  double elapsed_seconds = 0.0;
  double write_seconds = 0.0;

  friend bool operator==(const StatsState&, const StatsState&) = default;
};

/// Everything needed to rebuild a sink mid-stream.
struct SinkState {
  uint8_t format = 0;  ///< OutputFormat as an integer
  uint32_t id_width = 0;
  /// Durable file offset of the last committed boundary; resume truncates
  /// the output file to exactly this many bytes.
  uint64_t committed_bytes = 0;
  /// JoinSink's format-aware byte accounting at the checkpoint.
  uint64_t accounted_bytes = 0;
  /// Open-block fill of the binary *size model* (0 under text accounting).
  /// Equals partial_payload.size() for a materializing binary sink, but is
  /// carried separately so counting sinks checkpoint exactly too.
  uint64_t model_fill = 0;
  uint64_t num_links = 0;
  uint64_t num_groups = 0;
  uint64_t group_member_total = 0;
  /// Binary format: footer id_total so far.
  uint64_t id_total = 0;
  /// Binary format: records in the still-open block.
  uint64_t partial_records = 0;
  /// Binary format: payload bytes of the still-open block (not yet sealed,
  /// not on disk; replayed into the resumed sink's block buffer).
  std::string partial_payload;

  friend bool operator==(const SinkState&, const SinkState&) = default;
};

/// One pending CSJ(g) window group (serial checkpoints only).
struct WindowGroup {
  std::vector<PointId> members;
  std::vector<double> box_lo;  ///< size = dims
  std::vector<double> box_hi;  ///< size = dims

  friend bool operator==(const WindowGroup&, const WindowGroup&) = default;
};

/// The full checkpoint.
struct Manifest {
  /// Hash of every output-affecting configuration knob (algorithm, epsilon,
  /// window, ablations, format, threads, granularity, tree shape). Resume
  /// refuses to continue under a different configuration.
  uint64_t config_fingerprint = 0;
  uint32_t dims = 0;
  /// Worker threads of the original run (<= 1 = serial). Parallel resumes
  /// must use the same count: the round replay order depends on it.
  uint32_t threads = 0;
  uint64_t total_tasks = 0;
  /// Hash of the deterministic task list; a resume rebuilds the list and
  /// cross-checks before trusting next_task.
  uint64_t task_list_hash = 0;
  /// First task index not yet reflected in the sink position.
  uint64_t next_task = 0;
  StatsState stats;
  SinkState sink;
  std::vector<WindowGroup> window;
  /// Curated cumulative metric counters (join.*, sink.*, ... — see
  /// core/checkpoint_join.h), merged into the registry on resume.
  std::vector<std::pair<std::string, uint64_t>> metric_counters;

  friend bool operator==(const Manifest&, const Manifest&) = default;
};

/// Serializes to the on-disk byte layout (header + CRC'd payload).
std::string Serialize(const Manifest& manifest);

/// Exact inverse of Serialize. Any truncation, checksum mismatch, version
/// skew or trailing garbage yields a descriptive non-OK Status.
Status Parse(const std::string& bytes, Manifest* manifest);

/// Atomically commits `manifest` to `path` (temp + rename, file and
/// directory fsync), so the path always holds a complete manifest.
Status Save(const std::string& path, const Manifest& manifest);

/// Loads and validates the manifest at `path`.
Result<Manifest> Load(const std::string& path);

/// Order-dependent 64-bit hash combiner (used for config fingerprints and
/// task-list hashes).
inline uint64_t HashCombine(uint64_t h, uint64_t v) {
  // SplitMix64-style mixing of the accumulated state with the new value.
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h ^= (h >> 30);
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= (h >> 27);
  return h;
}

}  // namespace csj::checkpoint

#endif  // CSJ_STORAGE_CHECKPOINT_H_

#include "storage/binary_format.h"

#include <array>
#include <cstring>

#include "util/format.h"

namespace csj::binfmt {

namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

void AppendU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
}

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

uint32_t ReadU32(const char* data) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<uint8_t>(data[i]);
  }
  return v;
}

uint64_t ReadU64(const char* data) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<uint8_t>(data[i]);
  }
  return v;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  static const std::array<uint32_t, 256> kTable = MakeCrcTable();
  uint32_t c = seed ^ 0xFFFFFFFFu;
  const auto* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < size; ++i) {
    c = kTable[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

size_t VarintBytes(uint64_t value) {
  size_t n = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++n;
  }
  return n;
}

void AppendVarint(std::string* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

size_t ParseVarint(const char* data, size_t size, uint64_t* value) {
  uint64_t v = 0;
  for (size_t i = 0; i < size && i < 10; ++i) {
    const uint8_t byte = static_cast<uint8_t>(data[i]);
    if (i == 9 && byte > 1) return 0;  // would overflow 64 bits
    v |= static_cast<uint64_t>(byte & 0x7F) << (7 * i);
    if ((byte & 0x80) == 0) {
      *value = v;
      return i + 1;
    }
  }
  return 0;  // ran off the buffer (or past 10 bytes) mid-varint
}

size_t EncodedLinkBytes(PointId a, PointId b) {
  return 1 /* tag 0 */ + VarintBytes(a) +
         VarintBytes(ZigZag(static_cast<int64_t>(b) - static_cast<int64_t>(a)));
}

size_t EncodedGroupBytes(std::span<const PointId> members) {
  size_t n = VarintBytes(members.size()) + VarintBytes(members[0]);
  for (size_t i = 1; i < members.size(); ++i) {
    n += VarintBytes(ZigZag(static_cast<int64_t>(members[i]) -
                            static_cast<int64_t>(members[i - 1])));
  }
  return n;
}

void AppendLinkRecord(std::string* out, PointId a, PointId b) {
  out->push_back('\0');  // tag 0 = link
  AppendVarint(out, a);
  AppendVarint(out,
               ZigZag(static_cast<int64_t>(b) - static_cast<int64_t>(a)));
}

void AppendGroupRecord(std::string* out, std::span<const PointId> members) {
  AppendVarint(out, members.size());
  AppendVarint(out, members[0]);
  for (size_t i = 1; i < members.size(); ++i) {
    AppendVarint(out, ZigZag(static_cast<int64_t>(members[i]) -
                             static_cast<int64_t>(members[i - 1])));
  }
}

void AppendFileHeader(std::string* out, int id_width) {
  out->append(kMagic, sizeof(kMagic));
  out->push_back(static_cast<char>(kFormatVersion));
  out->push_back(static_cast<char>(id_width));
  AppendU16(out, 0);
}

Status ParseFileHeader(const char* data, size_t size, int* id_width) {
  if (size < kFileHeaderBytes) {
    return Status::InvalidArgument("binary result truncated in file header");
  }
  if (std::memcmp(data, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a CSJ2 binary result (bad magic)");
  }
  const uint8_t version = static_cast<uint8_t>(data[4]);
  if (version != kFormatVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported CSJ2 version %u", version));
  }
  const uint8_t width = static_cast<uint8_t>(data[5]);
  if (width < 1) {
    return Status::InvalidArgument("CSJ2 header has id_width 0");
  }
  *id_width = width;
  return Status::OK();
}

bool LooksLikeBinary(const char* data, size_t size) {
  return size >= sizeof(kMagic) &&
         std::memcmp(data, kMagic, sizeof(kMagic)) == 0;
}

void AppendBlockHeader(std::string* out, const BlockHeader& header) {
  AppendU32(out, header.payload_bytes);
  AppendU32(out, header.record_count);
  AppendU32(out, header.crc32);
}

BlockHeader ParseBlockHeader(const char* data) {
  BlockHeader header;
  header.payload_bytes = ReadU32(data);
  header.record_count = ReadU32(data + 4);
  header.crc32 = ReadU32(data + 8);
  return header;
}

void PatchBlockHeader(std::string* out, size_t pos, const BlockHeader& header) {
  std::string tmp;
  tmp.reserve(kBlockHeaderBytes);
  AppendBlockHeader(&tmp, header);
  out->replace(pos, kBlockHeaderBytes, tmp);
}

void AppendFooter(std::string* out, const Footer& footer) {
  const size_t start = out->size();
  AppendU64(out, footer.num_links);
  AppendU64(out, footer.num_groups);
  AppendU64(out, footer.id_total);
  AppendU32(out, Crc32(out->data() + start, 24));
}

Status ParseFooter(const char* data, size_t size, Footer* footer) {
  if (size < kFooterBytes) {
    return Status::InvalidArgument("binary result truncated in footer");
  }
  const uint32_t expected = Crc32(data, 24);
  const uint32_t actual = ReadU32(data + 24);
  if (expected != actual) {
    return Status::InvalidArgument(
        StrFormat("footer checksum mismatch (stored %08x, computed %08x)",
                  actual, expected));
  }
  footer->num_links = ReadU64(data);
  footer->num_groups = ReadU64(data + 8);
  footer->id_total = ReadU64(data + 16);
  return Status::OK();
}

}  // namespace csj::binfmt

#include "storage/checkpoint.h"

#include <cstdio>
#include <cstring>

#include "storage/binary_format.h"
#include "storage/output_file.h"
#include "util/check.h"
#include "util/format.h"
#include "util/metrics.h"

namespace csj::checkpoint {

namespace {

void AppendFixed32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void AppendFixed64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

uint64_t DoubleBits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

double BitsToDouble(uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

/// Bounds-checked sequential reader over the payload. Every primitive sets
/// a sticky error on underrun, so Parse() is a straight-line field list with
/// one error check at the end of each logical section.
class Reader {
 public:
  Reader(const char* data, size_t size) : data_(data), size_(size) {}

  uint64_t Varint(const char* field) {
    if (!status_.ok()) return 0;
    uint64_t value = 0;
    const size_t used = binfmt::ParseVarint(data_ + pos_, size_ - pos_, &value);
    if (used == 0) {
      status_ = Corrupt(field, "varint truncated or overlong");
      return 0;
    }
    pos_ += used;
    return value;
  }

  uint32_t Fixed32(const char* field) {
    if (!status_.ok()) return 0;
    if (size_ - pos_ < 4) {
      status_ = Corrupt(field, "fixed32 truncated");
      return 0;
    }
    uint32_t v = 0;
    for (int i = 3; i >= 0; --i) {
      v = (v << 8) | static_cast<uint8_t>(data_[pos_ + static_cast<size_t>(i)]);
    }
    pos_ += 4;
    return v;
  }

  uint64_t Fixed64(const char* field) {
    if (!status_.ok()) return 0;
    if (size_ - pos_ < 8) {
      status_ = Corrupt(field, "fixed64 truncated");
      return 0;
    }
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i) {
      v = (v << 8) | static_cast<uint8_t>(data_[pos_ + static_cast<size_t>(i)]);
    }
    pos_ += 8;
    return v;
  }

  std::string Bytes(uint64_t len, const char* field) {
    if (!status_.ok()) return std::string();
    if (size_ - pos_ < len) {
      status_ = Corrupt(field, "byte string truncated");
      return std::string();
    }
    std::string s(data_ + pos_, len);
    pos_ += len;
    return s;
  }

  /// A varint length immediately validated against the remaining payload,
  /// for container counts: a corrupt huge count fails here instead of
  /// driving a multi-gigabyte reserve.
  uint64_t Count(const char* field) {
    const uint64_t n = Varint(field);
    if (status_.ok() && n > size_ - pos_) {
      status_ = Corrupt(field, "count exceeds remaining payload");
      return 0;
    }
    return n;
  }

  bool AtEnd() const { return pos_ == size_; }
  const Status& status() const { return status_; }

  static Status Corrupt(const char* field, const char* what) {
    return Status::InvalidArgument(
        StrFormat("corrupt checkpoint manifest: %s (%s)", field, what));
  }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  Status status_;
};

void SerializeStats(std::string* out, const StatsState& s) {
  binfmt::AppendVarint(out, s.distance_computations);
  binfmt::AppendVarint(out, s.kernel_candidates);
  binfmt::AppendVarint(out, s.kernel_pruned);
  binfmt::AppendVarint(out, s.kernel_hits);
  binfmt::AppendVarint(out, s.node_accesses);
  binfmt::AppendVarint(out, s.page_requests);
  binfmt::AppendVarint(out, s.page_disk_reads);
  binfmt::AppendVarint(out, s.early_stops);
  binfmt::AppendVarint(out, s.merge_attempts);
  binfmt::AppendVarint(out, s.merges);
  binfmt::AppendVarint(out, s.implied_links);
  AppendFixed64(out, DoubleBits(s.elapsed_seconds));
  AppendFixed64(out, DoubleBits(s.write_seconds));
}

void ParseStats(Reader* r, StatsState* s) {
  s->distance_computations = r->Varint("stats.distance_computations");
  s->kernel_candidates = r->Varint("stats.kernel_candidates");
  s->kernel_pruned = r->Varint("stats.kernel_pruned");
  s->kernel_hits = r->Varint("stats.kernel_hits");
  s->node_accesses = r->Varint("stats.node_accesses");
  s->page_requests = r->Varint("stats.page_requests");
  s->page_disk_reads = r->Varint("stats.page_disk_reads");
  s->early_stops = r->Varint("stats.early_stops");
  s->merge_attempts = r->Varint("stats.merge_attempts");
  s->merges = r->Varint("stats.merges");
  s->implied_links = r->Varint("stats.implied_links");
  s->elapsed_seconds = BitsToDouble(r->Fixed64("stats.elapsed_seconds"));
  s->write_seconds = BitsToDouble(r->Fixed64("stats.write_seconds"));
}

}  // namespace

std::string Serialize(const Manifest& m) {
  std::string payload;
  AppendFixed64(&payload, m.config_fingerprint);
  binfmt::AppendVarint(&payload, m.dims);
  binfmt::AppendVarint(&payload, m.threads);
  binfmt::AppendVarint(&payload, m.total_tasks);
  AppendFixed64(&payload, m.task_list_hash);
  binfmt::AppendVarint(&payload, m.next_task);
  SerializeStats(&payload, m.stats);

  binfmt::AppendVarint(&payload, m.sink.format);
  binfmt::AppendVarint(&payload, m.sink.id_width);
  binfmt::AppendVarint(&payload, m.sink.committed_bytes);
  binfmt::AppendVarint(&payload, m.sink.accounted_bytes);
  binfmt::AppendVarint(&payload, m.sink.model_fill);
  binfmt::AppendVarint(&payload, m.sink.num_links);
  binfmt::AppendVarint(&payload, m.sink.num_groups);
  binfmt::AppendVarint(&payload, m.sink.group_member_total);
  binfmt::AppendVarint(&payload, m.sink.id_total);
  binfmt::AppendVarint(&payload, m.sink.partial_records);
  binfmt::AppendVarint(&payload, m.sink.partial_payload.size());
  payload += m.sink.partial_payload;

  binfmt::AppendVarint(&payload, m.window.size());
  for (const WindowGroup& g : m.window) {
    binfmt::AppendVarint(&payload, g.members.size());
    for (PointId id : g.members) binfmt::AppendVarint(&payload, id);
    CSJ_CHECK(g.box_lo.size() == m.dims && g.box_hi.size() == m.dims)
        << "window group box dimensionality mismatch";
    for (double d : g.box_lo) AppendFixed64(&payload, DoubleBits(d));
    for (double d : g.box_hi) AppendFixed64(&payload, DoubleBits(d));
  }

  binfmt::AppendVarint(&payload, m.metric_counters.size());
  for (const auto& [name, value] : m.metric_counters) {
    binfmt::AppendVarint(&payload, name.size());
    payload += name;
    binfmt::AppendVarint(&payload, value);
  }

  std::string out;
  out.reserve(kHeaderBytes + payload.size());
  out.append(kMagic, sizeof(kMagic));
  AppendFixed32(&out, kVersion);
  AppendFixed64(&out, payload.size());
  AppendFixed32(&out, binfmt::Crc32(payload.data(), payload.size()));
  out += payload;
  return out;
}

Status Parse(const std::string& bytes, Manifest* manifest) {
  if (bytes.size() < kHeaderBytes) {
    return Status::InvalidArgument(StrFormat(
        "corrupt checkpoint manifest: %zu bytes is shorter than the %zu-byte "
        "header",
        bytes.size(), kHeaderBytes));
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(
        "corrupt checkpoint manifest: bad magic (not a CSJK file)");
  }
  Reader header(bytes.data() + sizeof(kMagic), kHeaderBytes - sizeof(kMagic));
  const uint32_t version = header.Fixed32("version");
  const uint64_t payload_len = header.Fixed64("payload_len");
  const uint32_t expected_crc = header.Fixed32("payload_crc");
  if (version != kVersion) {
    return Status::InvalidArgument(StrFormat(
        "checkpoint manifest version %u is not supported (expected %u)",
        version, kVersion));
  }
  if (bytes.size() - kHeaderBytes < payload_len) {
    return Status::InvalidArgument(StrFormat(
        "corrupt checkpoint manifest: truncated payload (%zu of %llu bytes)",
        bytes.size() - kHeaderBytes,
        static_cast<unsigned long long>(payload_len)));
  }
  if (bytes.size() - kHeaderBytes > payload_len) {
    return Status::InvalidArgument(StrFormat(
        "corrupt checkpoint manifest: %zu bytes of trailing garbage",
        bytes.size() - kHeaderBytes - payload_len));
  }
  const char* payload = bytes.data() + kHeaderBytes;
  const uint32_t actual_crc = binfmt::Crc32(payload, payload_len);
  if (actual_crc != expected_crc) {
    return Status::InvalidArgument(StrFormat(
        "corrupt checkpoint manifest: payload CRC mismatch (stored %08x, "
        "computed %08x)",
        expected_crc, actual_crc));
  }

  Manifest m;
  Reader r(payload, payload_len);
  m.config_fingerprint = r.Fixed64("config_fingerprint");
  m.dims = static_cast<uint32_t>(r.Varint("dims"));
  m.threads = static_cast<uint32_t>(r.Varint("threads"));
  m.total_tasks = r.Varint("total_tasks");
  m.task_list_hash = r.Fixed64("task_list_hash");
  m.next_task = r.Varint("next_task");
  ParseStats(&r, &m.stats);

  m.sink.format = static_cast<uint8_t>(r.Varint("sink.format"));
  m.sink.id_width = static_cast<uint32_t>(r.Varint("sink.id_width"));
  m.sink.committed_bytes = r.Varint("sink.committed_bytes");
  m.sink.accounted_bytes = r.Varint("sink.accounted_bytes");
  m.sink.model_fill = r.Varint("sink.model_fill");
  m.sink.num_links = r.Varint("sink.num_links");
  m.sink.num_groups = r.Varint("sink.num_groups");
  m.sink.group_member_total = r.Varint("sink.group_member_total");
  m.sink.id_total = r.Varint("sink.id_total");
  m.sink.partial_records = r.Varint("sink.partial_records");
  m.sink.partial_payload =
      r.Bytes(r.Count("sink.partial_payload"), "sink.partial_payload");

  if (m.dims == 0 || m.dims > 64) {
    if (r.status().ok()) {
      return Reader::Corrupt("dims", "implausible dimensionality");
    }
  }
  const uint64_t window_groups = r.Count("window.size");
  m.window.reserve(r.status().ok() ? window_groups : 0);
  for (uint64_t i = 0; r.status().ok() && i < window_groups; ++i) {
    WindowGroup g;
    const uint64_t members = r.Count("window.group.members");
    g.members.reserve(r.status().ok() ? members : 0);
    for (uint64_t j = 0; r.status().ok() && j < members; ++j) {
      g.members.push_back(
          static_cast<PointId>(r.Varint("window.group.member")));
    }
    for (uint32_t d = 0; d < m.dims; ++d) {
      g.box_lo.push_back(BitsToDouble(r.Fixed64("window.group.box_lo")));
    }
    for (uint32_t d = 0; d < m.dims; ++d) {
      g.box_hi.push_back(BitsToDouble(r.Fixed64("window.group.box_hi")));
    }
    m.window.push_back(std::move(g));
  }

  const uint64_t counters = r.Count("metric_counters.size");
  m.metric_counters.reserve(r.status().ok() ? counters : 0);
  for (uint64_t i = 0; r.status().ok() && i < counters; ++i) {
    std::string name =
        r.Bytes(r.Count("metric_counters.name"), "metric_counters.name");
    const uint64_t value = r.Varint("metric_counters.value");
    m.metric_counters.emplace_back(std::move(name), value);
  }

  CSJ_RETURN_IF_ERROR(r.status());
  if (!r.AtEnd()) {
    return Reader::Corrupt("payload", "unconsumed bytes after the last field");
  }
  *manifest = std::move(m);
  return Status::OK();
}

Status Save(const std::string& path, const Manifest& manifest) {
  CSJ_METRIC_SCOPED_TIMER("checkpoint.save_ns");
  const std::string bytes = Serialize(manifest);
  OutputFile file;
  OutputFile::Options options;
  options.atomic = true;        // the path is always a *complete* manifest
  options.sync_on_close = true; // survives power loss (file + directory)
  CSJ_RETURN_IF_ERROR(file.Open(path, options));
  CSJ_RETURN_IF_ERROR(file.Append(bytes));
  CSJ_RETURN_IF_ERROR(file.Close());
  CSJ_METRIC_COUNT("checkpoint.saves", 1);
  CSJ_METRIC_COUNT("checkpoint.bytes", bytes.size());
  return Status::OK();
}

Result<Manifest> Load(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("no checkpoint manifest at " + path);
  }
  std::string bytes;
  char buf[1 << 16];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, got);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::IoError("cannot read checkpoint manifest: " + path);
  }
  Manifest manifest;
  CSJ_RETURN_IF_ERROR(Parse(bytes, &manifest));
  CSJ_METRIC_COUNT("checkpoint.loads", 1);
  return manifest;
}

}  // namespace csj::checkpoint

#ifndef CSJ_STORAGE_BINARY_FORMAT_H_
#define CSJ_STORAGE_BINARY_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "geom/point.h"
#include "util/status.h"

/// \file
/// Compact join-output binary format v2 ("CSJ2").
///
/// The paper's headline metric is output *bytes*; the text format spends
/// id_width+1 bytes per id regardless of how clustered the ids are. The v2
/// binary format exploits the locality the compact join produces (group
/// members usually sit in one subtree, so their ids are near each other):
/// ids are varint-coded and, within a record, delta-coded, which shrinks a
/// dense-clump result by 3-5x. See docs/OUTPUT_FORMAT.md for the normative
/// layout description.
///
/// Layout summary (all integers little-endian):
///
///   File    := FileHeader Block* EofMarker Footer
///   FileHeader (8 bytes)  := magic "CSJ2" | version u8 = 2 | id_width u8
///                            | reserved u16 = 0
///   Block   := BlockHeader payload
///   BlockHeader (12 bytes):= payload_bytes u32 (>0) | record_count u32 (>0)
///                            | crc32(payload) u32
///   EofMarker (12 bytes)  := a BlockHeader of all zeros
///   Footer (28 bytes)     := num_links u64 | num_groups u64 | id_total u64
///                            | crc32(first 24 bytes) u32
///
///   Record  := tag varint | id[0] varint | zigzag(id[i]-id[i-1]) varint ...
///     tag 0      -> link (exactly 2 ids)
///     tag k >= 2 -> group of k ids (emission order preserved, so decoding
///                   back to the text format is byte-exact)
///     tag 1      -> invalid
///
/// Records never span blocks; a block is sealed when appending the next
/// record would push its payload past the target size (an oversized record
/// gets a block of its own). Per-block record counts and checksums let a
/// reader validate or skip whole blocks, and the footer distinguishes a
/// complete file from a truncated one.
///
/// This header also defines the *size model*: the exact byte cost of a
/// record stream, shared by the binary writer and the counting sink so a
/// CountingSink in binary mode predicts the final file size exactly.

namespace csj::binfmt {

inline constexpr char kMagic[4] = {'C', 'S', 'J', '2'};
inline constexpr uint8_t kFormatVersion = 2;
inline constexpr size_t kFileHeaderBytes = 8;
inline constexpr size_t kBlockHeaderBytes = 12;
inline constexpr size_t kFooterBytes = 28;
/// Default sealed-block payload target. Large enough to amortize the header
/// and keep the background writer's appends chunky; small enough that a
/// reader validating checksums works in cache-sized pieces.
inline constexpr size_t kDefaultBlockPayloadBytes = 64 * 1024;

/// CRC-32 (reflected polynomial 0xEDB88320, the zlib/PNG one).
/// Crc32("123456789") == 0xCBF43926.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

/// LEB128 varint (low 7 bits first).
size_t VarintBytes(uint64_t value);
void AppendVarint(std::string* out, uint64_t value);
/// Parses one varint from [data, data+size). Returns bytes consumed, or 0 if
/// the buffer ends mid-varint or the value exceeds 64 bits.
size_t ParseVarint(const char* data, size_t size, uint64_t* value);

/// ZigZag signed<->unsigned mapping for delta-coded ids.
inline uint64_t ZigZag(int64_t value) {
  return (static_cast<uint64_t>(value) << 1) ^
         static_cast<uint64_t>(value >> 63);
}
inline int64_t UnZigZag(uint64_t value) {
  return static_cast<int64_t>(value >> 1) ^ -static_cast<int64_t>(value & 1);
}

/// Record encoders and their exact encoded sizes (the per-record size model).
size_t EncodedLinkBytes(PointId a, PointId b);
size_t EncodedGroupBytes(std::span<const PointId> members);
void AppendLinkRecord(std::string* out, PointId a, PointId b);
void AppendGroupRecord(std::string* out, std::span<const PointId> members);

/// The block-sealing rule, shared verbatim by the writer and the size model:
/// seal before appending `record_bytes` iff the block already holds payload
/// and this record would push it past the target.
inline bool WouldSealBlock(size_t fill, size_t record_bytes, size_t target) {
  return fill > 0 && fill + record_bytes > target;
}

/// File header / block header / footer serialization.
void AppendFileHeader(std::string* out, int id_width);
/// Validates an 8-byte header; fills id_width.
Status ParseFileHeader(const char* data, size_t size, int* id_width);
/// True if the first bytes of a file look like a CSJ2 header (magic match).
bool LooksLikeBinary(const char* data, size_t size);

struct BlockHeader {
  uint32_t payload_bytes = 0;
  uint32_t record_count = 0;
  uint32_t crc32 = 0;

  bool IsEofMarker() const {
    return payload_bytes == 0 && record_count == 0 && crc32 == 0;
  }
};
void AppendBlockHeader(std::string* out, const BlockHeader& header);
/// Parses exactly kBlockHeaderBytes.
BlockHeader ParseBlockHeader(const char* data);
/// Patches a header in place at `out[pos..pos+12)` (the writer reserves the
/// header slot up front and fills it when the block seals).
void PatchBlockHeader(std::string* out, size_t pos, const BlockHeader& header);

struct Footer {
  uint64_t num_links = 0;
  uint64_t num_groups = 0;
  uint64_t id_total = 0;  ///< total ids across all records
};
void AppendFooter(std::string* out, const Footer& footer);
/// Validates the trailing CRC; fills `footer`.
Status ParseFooter(const char* data, size_t size, Footer* footer);

/// Exact byte accounting for a record stream, mirroring the writer's sealing
/// decisions. Feed it the same encoded record sizes in the same order and
/// `total + CloseBytes()` equals the final file size to the byte.
class BinarySizeModel {
 public:
  explicit BinarySizeModel(size_t block_payload_target = kDefaultBlockPayloadBytes)
      : target_(block_payload_target) {}

  /// Accounts one record of `record_bytes` encoded payload. Returns the
  /// bytes this record adds to the file, including the header of any block
  /// it seals.
  uint64_t AddRecord(size_t record_bytes) {
    uint64_t delta = record_bytes;
    if (WouldSealBlock(fill_, record_bytes, target_)) {
      delta += kBlockHeaderBytes;  // header of the block just sealed
      fill_ = 0;
    }
    fill_ += record_bytes;
    return delta;
  }

  /// Bytes Finish() appends from this state: the header of the final partial
  /// block (if any), the EOF marker, and the footer.
  uint64_t CloseBytes() const {
    return (fill_ > 0 ? kBlockHeaderBytes : 0) + kBlockHeaderBytes +
           kFooterBytes;
  }

  size_t fill() const { return fill_; }
  size_t block_payload_target() const { return target_; }

  /// Checkpoint support: restores the open-block fill recorded in a
  /// manifest, so a resumed sink's size model continues sealing at exactly
  /// the byte positions the uninterrupted run would have.
  void RestoreFill(size_t fill) { fill_ = fill; }

 private:
  size_t target_;
  size_t fill_ = 0;
};

}  // namespace csj::binfmt

#endif  // CSJ_STORAGE_BINARY_FORMAT_H_

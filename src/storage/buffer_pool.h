#ifndef CSJ_STORAGE_BUFFER_POOL_H_
#define CSJ_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

/// \file
/// LRU buffer-pool simulator.
///
/// Experiment 3 of the paper measures disk-page and cache accesses of the
/// join algorithms under varying page and cache sizes and finds no
/// significant difference between SSJ / N-CSJ / CSJ(g). Our index trees live
/// in memory, so instead of a real pager we *simulate* one: every node visit
/// is mapped to a page id and run through an LRU pool of configurable
/// capacity, which yields exact request/hit/miss counts for the same
/// traversal a disk-resident tree would perform.

namespace csj {

/// Counters reported by the simulator.
struct BufferPoolStats {
  uint64_t requests = 0;    ///< total page requests
  uint64_t hits = 0;        ///< requests served from the pool
  uint64_t disk_reads = 0;  ///< requests that would have gone to disk

  double HitRate() const {
    return requests == 0 ? 0.0 : static_cast<double>(hits) / requests;
  }
};

/// Simulates an LRU page cache over abstract page ids.
class BufferPoolSim {
 public:
  /// \param capacity_pages number of pages the pool holds (>= 1).
  explicit BufferPoolSim(size_t capacity_pages);

  /// Records one access to `page`, updating hit/miss counters and LRU order.
  void Access(uint64_t page);

  /// Clears both the cached pages and the counters.
  void Reset();

  const BufferPoolStats& stats() const { return stats_; }
  size_t capacity() const { return capacity_; }
  size_t resident_pages() const { return lru_.size(); }

  /// One-line summary for reports.
  std::string Summary() const;

 private:
  size_t capacity_;
  BufferPoolStats stats_;
  // Front = most recently used.
  std::list<uint64_t> lru_;
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> index_;
};

}  // namespace csj

#endif  // CSJ_STORAGE_BUFFER_POOL_H_

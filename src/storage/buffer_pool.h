#ifndef CSJ_STORAGE_BUFFER_POOL_H_
#define CSJ_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/exec_context.h"
#include "util/status.h"

/// \file
/// Page caching, twice:
///
///  * **BufferPoolSim** — the LRU *simulator* behind Experiment 3's
///    disk-access counts. Single-threaded, no data, exact hit/miss counters
///    for a traversal a disk-resident tree would perform.
///
///  * **BufferPool** — a real, thread-safe page cache used by the paged
///    read path (index/paged_tree.h). Pages are loaded through a caller
///    supplied loader, pinned while in use (RAII PageRef), and evicted LRU
///    among *unpinned* frames only. The pool is sharded: a page maps to one
///    of `kShards` shards, each with its own mutex, LRU list and map, so
///    concurrent readers rarely contend. Frame memory is charged against an
///    optional MemoryBudget (util/exec_context.h); when a reservation is
///    denied the pool **sheds** clean unpinned pages first (all pages are
///    clean — the pool is read-only) and fails with kResourceExhausted only
///    when shedding frees nothing.
///
/// Counter conservation (asserted by the concurrent stress test):
///
///     requests   == hits + misses
///     misses     == insertions + load_errors + races + denials
///     insertions == resident_pages + evictions + sheds
///
/// where `races` counts duplicate loads discarded when two threads missed
/// the same page concurrently (the loader runs outside the shard lock).

namespace csj {

/// Counters reported by the simulator.
struct BufferPoolStats {
  uint64_t requests = 0;    ///< total page requests
  uint64_t hits = 0;        ///< requests served from the pool
  uint64_t disk_reads = 0;  ///< requests that would have gone to disk

  double HitRate() const {
    return requests == 0 ? 0.0 : static_cast<double>(hits) / requests;
  }
};

/// Simulates an LRU page cache over abstract page ids.
class BufferPoolSim {
 public:
  /// \param capacity_pages number of pages the pool holds (>= 1).
  explicit BufferPoolSim(size_t capacity_pages);

  /// Records one access to `page`, updating hit/miss counters and LRU order.
  void Access(uint64_t page);

  /// Clears both the cached pages and the counters.
  void Reset();

  const BufferPoolStats& stats() const { return stats_; }
  size_t capacity() const { return capacity_; }
  size_t resident_pages() const { return lru_.size(); }

  /// One-line summary for reports.
  std::string Summary() const;

 private:
  size_t capacity_;
  BufferPoolStats stats_;
  // Front = most recently used.
  std::list<uint64_t> lru_;
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> index_;
};

/// A real, thread-safe, pin-counted LRU page cache. See the file comment.
class BufferPool {
 public:
  /// Shard count: fixed so the page → shard map never changes. Eight is
  /// plenty for the worker counts the join drivers use.
  static constexpr size_t kShards = 8;
  /// Per-frame bookkeeping overhead charged to the budget on top of the
  /// page bytes (map node, LRU node, control block, pin counter).
  static constexpr uint64_t kFrameOverheadBytes = 96;

  struct Options {
    /// Target resident pages across all shards (>= 1). Enforcement is
    /// approximate under pinning: a shard whose frames are all pinned may
    /// temporarily overcommit rather than block.
    size_t capacity_pages = 256;
    /// Optional memory budget every resident frame is charged against.
    /// Not owned; may be shared (MemoryBudget is thread-safe).
    MemoryBudget* budget = nullptr;
  };

  /// Fills `out` with the bytes of `page`. Runs outside the shard lock; may
  /// be called concurrently for different pages (and, rarely, for the same
  /// page — the losing copy is discarded).
  using Loader = std::function<Status(uint64_t page, std::vector<char>* out)>;

  /// Point-in-time counters; see the conservation laws in the file comment.
  struct StatsSnapshot {
    uint64_t requests = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t load_errors = 0;
    uint64_t races = 0;
    uint64_t denials = 0;    ///< misses refused by the budget after shedding
    uint64_t evictions = 0;  ///< capacity evictions (excludes sheds)
    uint64_t sheds = 0;      ///< pages dropped by ShedClean / budget pressure
    size_t resident_pages = 0;
  };

  explicit BufferPool(const Options& options);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  class PageRef;

  /// Returns a pinned reference to `page`, loading it via `loader` on a
  /// miss. The page stays resident at least until the PageRef is destroyed.
  /// Loader failures are returned (and never cached); budget denial that
  /// survives shedding returns kResourceExhausted.
  Result<PageRef> Fetch(uint64_t page, const Loader& loader);

  /// Drops every unpinned page, releasing its budget charge. Returns the
  /// number of pages dropped. Called internally under budget pressure;
  /// callable externally (e.g. between join phases).
  size_t ShedClean();

  StatsSnapshot stats() const;
  size_t capacity() const { return capacity_; }
  size_t resident_pages() const {
    return resident_.load(std::memory_order_relaxed);
  }
  MemoryBudget* budget() const { return budget_; }

 private:
  struct Frame {
    std::vector<char> data;
    std::atomic<uint32_t> pins{0};
    uint64_t charge = 0;  ///< bytes reserved against the budget
  };

  struct Shard {
    std::mutex mu;
    // Front = most recently used; only unpinned frames are evictable.
    std::list<uint64_t> lru;
    std::unordered_map<
        uint64_t,
        std::pair<std::list<uint64_t>::iterator, std::shared_ptr<Frame>>>
        map;
  };

  static size_t ShardIndex(uint64_t page) {
    // Mix so sequential page ids spread across shards.
    page ^= page >> 33;
    page *= 0xff51afd7ed558ccdULL;
    page ^= page >> 33;
    return static_cast<size_t>(page % kShards);
  }

  /// Removes `page` from `shard` (caller holds shard.mu; frame unpinned).
  void Erase(Shard& shard, std::list<uint64_t>::iterator lru_it);

  /// Evicts from the tail of `shard` while the pool is over capacity,
  /// skipping pinned frames. Caller holds shard.mu.
  void EnforceCapacity(Shard& shard);

  const size_t capacity_;
  MemoryBudget* const budget_;
  Shard shards_[kShards];
  std::atomic<size_t> resident_{0};

  // Stats (relaxed; exactness comes from being incremented exactly once per
  // event, not from ordering).
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> load_errors_{0};
  std::atomic<uint64_t> races_{0};
  std::atomic<uint64_t> denials_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> sheds_{0};
};

/// Pinned view of a cached page. Move-only; unpins on destruction. The
/// underlying bytes are immutable and outlive the ref even if the page is
/// shed concurrently (shared ownership).
class BufferPool::PageRef {
 public:
  PageRef() = default;
  ~PageRef() { Unpin(); }

  PageRef(PageRef&& other) noexcept : frame_(std::move(other.frame_)) {
    other.frame_ = nullptr;
  }
  PageRef& operator=(PageRef&& other) noexcept {
    if (this != &other) {
      Unpin();
      frame_ = std::move(other.frame_);
      other.frame_ = nullptr;
    }
    return *this;
  }
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;

  bool valid() const { return frame_ != nullptr; }
  const std::vector<char>& data() const { return frame_->data; }

 private:
  friend class BufferPool;
  explicit PageRef(std::shared_ptr<Frame> frame) : frame_(std::move(frame)) {}

  void Unpin() {
    if (frame_ != nullptr) {
      frame_->pins.fetch_sub(1, std::memory_order_release);
      frame_ = nullptr;
    }
  }

  std::shared_ptr<Frame> frame_;
};

}  // namespace csj

#endif  // CSJ_STORAGE_BUFFER_POOL_H_

#ifndef CSJ_STORAGE_OUTPUT_FILE_H_
#define CSJ_STORAGE_OUTPUT_FILE_H_

#include <cstdio>
#include <cstdint>
#include <string>

#include "util/status.h"

/// \file
/// Buffered append-only text file used by the file-backed join sink.
///
/// The paper measures output size as "the size in bytes of the resulting
/// output text file" and includes the write time in the reported runtime, so
/// the file sink performs real buffered writes and counts every byte.

namespace csj {

/// Append-only buffered writer. Not thread safe.
class OutputFile {
 public:
  OutputFile() = default;
  ~OutputFile();

  OutputFile(const OutputFile&) = delete;
  OutputFile& operator=(const OutputFile&) = delete;

  /// Opens (truncating) the file at `path`.
  Status Open(const std::string& path);

  /// Appends raw bytes. Must be open.
  void Append(const char* data, size_t size);
  void Append(const std::string& text) { Append(text.data(), text.size()); }

  /// Flushes buffers and closes. Safe to call twice.
  Status Close();

  bool is_open() const { return file_ != nullptr; }
  uint64_t bytes_written() const { return bytes_written_; }
  const std::string& path() const { return path_; }

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  uint64_t bytes_written_ = 0;
};

}  // namespace csj

#endif  // CSJ_STORAGE_OUTPUT_FILE_H_

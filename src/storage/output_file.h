#ifndef CSJ_STORAGE_OUTPUT_FILE_H_
#define CSJ_STORAGE_OUTPUT_FILE_H_

#include <cstdio>
#include <cstdint>
#include <string>

#include "util/status.h"

/// \file
/// Buffered append-only text file used by the file-backed join sink.
///
/// The paper measures output size as "the size in bytes of the resulting
/// output text file" and includes the write time in the reported runtime, so
/// the file sink performs real buffered writes and counts every byte.
///
/// Failure semantics: every I/O error (short write, flush, fsync, close,
/// rename) is captured in a *sticky* Status — the first error wins, later
/// operations short-circuit and return it. On the first error, and on
/// destruction without a successful Close(), the partially written file is
/// deleted, so a failed or interrupted writer never leaves partial output
/// behind. With `Options::atomic`, data goes to a temporary sibling file
/// that is renamed over the destination only after a fully successful
/// Close(), making the write crash-safe as well.
///
/// Failpoints (see util/failpoint.h): `output_file.open`,
/// `output_file.append` (simulated short write), `output_file.flush`,
/// `output_file.sync`, `output_file.close`, `output_file.rename`.

namespace csj {

/// Append-only buffered writer. Not thread safe.
class OutputFile {
 public:
  struct Options {
    /// Write to `<path>.tmp.<pid>` and rename onto `path` in Close(): the
    /// destination either keeps its previous content or appears complete.
    bool atomic = false;
    /// fsync() before closing, so a successful Close() survives power loss.
    bool sync_on_close = false;
  };

  OutputFile() = default;
  ~OutputFile();

  OutputFile(const OutputFile&) = delete;
  OutputFile& operator=(const OutputFile&) = delete;

  /// Opens the file at `path` for writing (truncating it immediately in
  /// non-atomic mode; on successful Close() in atomic mode).
  Status Open(const std::string& path, const Options& options);
  Status Open(const std::string& path) { return Open(path, Options()); }

  /// Appends raw bytes. Returns the sticky error state: once any append
  /// fails, the file is closed, partial output is deleted, and every later
  /// Append returns the original error. Appending to a file that was never
  /// opened, or after Close(), returns (but does not stick) a
  /// FailedPrecondition.
  Status Append(const char* data, size_t size);
  Status Append(const std::string& text) {
    return Append(text.data(), text.size());
  }

  /// Flushes (and optionally fsyncs) buffers, closes, and — in atomic mode —
  /// renames the temporary onto the destination. Safe to call twice: the
  /// second call returns the sticky status of the first.
  Status Close();

  /// Sticky error state; OK while the writer is healthy.
  const Status& status() const { return status_; }

  bool is_open() const { return file_ != nullptr; }
  uint64_t bytes_written() const { return bytes_written_; }
  const std::string& path() const { return path_; }

 private:
  /// Records the first error, closes the stream, and deletes the partial
  /// file. Returns the sticky status for tail-calling.
  Status Fail(Status status);

  std::FILE* file_ = nullptr;
  std::string path_;        ///< destination path
  std::string write_path_;  ///< file actually being written (tmp if atomic)
  Options options_;
  Status status_;
  uint64_t bytes_written_ = 0;
};

}  // namespace csj

#endif  // CSJ_STORAGE_OUTPUT_FILE_H_

#ifndef CSJ_STORAGE_OUTPUT_FILE_H_
#define CSJ_STORAGE_OUTPUT_FILE_H_

#include <cstdio>
#include <cstdint>
#include <string>

#include "util/retry.h"
#include "util/status.h"

/// \file
/// Buffered append-only text file used by the file-backed join sink.
///
/// The paper measures output size as "the size in bytes of the resulting
/// output text file" and includes the write time in the reported runtime, so
/// the file sink performs real buffered writes and counts every byte.
///
/// Failure semantics: every I/O error (short write, flush, fsync, close,
/// rename) is captured in a *sticky* Status — the first error wins, later
/// operations short-circuit and return it. On the first error, and on
/// destruction without a successful Close(), the partially written file is
/// deleted, so a failed or interrupted writer never leaves partial output
/// behind — unless `Options::preserve_on_error` is set, which checkpointed
/// runs use so the partial file stays available for `--resume`. With
/// `Options::atomic`, data goes to a temporary sibling file that is renamed
/// over the destination only after a fully successful Close(), making the
/// write crash-safe as well. With `Options::sync_on_close`, the file *and
/// its parent directory* are fsynced, so the committed rename survives power
/// loss (a file fsync alone does not persist the directory entry).
///
/// Transient faults: short writes whose errno is transient (EINTR, EAGAIN,
/// ...; util/retry.h) are retried with bounded exponential backoff before
/// the error sticks, writing only the not-yet-landed suffix on each attempt.
/// Retries are visible through the `retry.*` metrics.
///
/// Failpoints (see util/failpoint.h): `output_file.open`,
/// `output_file.append` (simulated hard short write),
/// `output_file.append_transient` (simulated retryable short write),
/// `output_file.flush`, `output_file.sync`, `output_file.dirsync`,
/// `output_file.close`, `output_file.rename`.

namespace csj {

/// Append-only buffered writer. Not thread safe.
class OutputFile {
 public:
  struct Options {
    /// Write to `<path>.tmp.<pid>` and rename onto `path` in Close(): the
    /// destination either keeps its previous content or appears complete.
    bool atomic = false;
    /// fsync() the file and its parent directory before/after closing, so a
    /// successful Close() survives power loss.
    bool sync_on_close = false;
    /// Keep the partial file on error and on abandonment instead of deleting
    /// it. Checkpointed runs set this: the bytes up to the last checkpoint
    /// are exactly what --resume needs. Forced on by OpenForResume().
    bool preserve_on_error = false;
    /// Backoff schedule for transient append faults (max_attempts = 1
    /// disables retrying).
    RetryPolicy retry = {};
  };

  OutputFile() = default;
  ~OutputFile();

  OutputFile(const OutputFile&) = delete;
  OutputFile& operator=(const OutputFile&) = delete;

  /// Opens the file at `path` for writing (truncating it immediately in
  /// non-atomic mode; on successful Close() in atomic mode).
  Status Open(const std::string& path, const Options& options);
  Status Open(const std::string& path) { return Open(path, Options()); }

  /// Streams to an already-open descriptor (socket, pipe, stdout). The fd is
  /// dup()ed — the caller keeps ownership of the original. Atomic mode is
  /// meaningless for a stream (checked), nothing is ever deleted on error,
  /// and Close() flushes and closes only the duplicate. A peer that hangs up
  /// mid-stream surfaces as EPIPE, which Append maps to a sticky kCancelled
  /// (see below).
  Status OpenFd(int fd, const Options& options);
  Status OpenFd(int fd) { return OpenFd(fd, Options()); }

  /// Opens an existing file for a resumed run: keeps the first `keep_bytes`
  /// bytes (the last checkpoint's durable position), truncates everything
  /// after them, and appends from there. Requires non-atomic options;
  /// forces preserve_on_error (a resumable file must never be auto-deleted).
  /// bytes_written() continues from `keep_bytes`, i.e. it always reports the
  /// absolute output position.
  Status OpenForResume(const std::string& path, uint64_t keep_bytes,
                       const Options& options);

  /// Appends raw bytes. Returns the sticky error state: once any append
  /// fails (after transient retries are exhausted), the file is closed,
  /// partial output is deleted (unless preserved), and every later Append
  /// returns the original error. Appending to a file that was never opened,
  /// or after Close(), returns (but does not stick) a FailedPrecondition.
  /// EPIPE — the reader closed its end (`csj_tool join | head`, a client
  /// disconnect) — is not an I/O fault and not transient: it becomes a
  /// sticky kCancelled with no retry, so the producing join unwinds cleanly.
  Status Append(const char* data, size_t size);
  Status Append(const std::string& text) {
    return Append(text.data(), text.size());
  }

  /// Flushes stdio buffers to the OS. Errors stick.
  Status Flush();

  /// Durable mid-stream commit: flush + fsync. After an OK Sync(), every
  /// byte appended so far survives a crash of this process (checkpoints
  /// record bytes_written() immediately after a Sync). Errors stick.
  Status Sync();

  /// Flushes (and optionally fsyncs) buffers, closes, and — in atomic mode —
  /// renames the temporary onto the destination. Safe to call twice: the
  /// second call returns the sticky status of the first.
  Status Close();

  /// fsyncs the directory containing `path`, making a just-created or
  /// just-renamed directory entry durable. Failpoint: `output_file.dirsync`.
  static Status SyncContainingDir(const std::string& path);

  /// Sticky error state; OK while the writer is healthy.
  const Status& status() const { return status_; }

  bool is_open() const { return file_ != nullptr; }
  uint64_t bytes_written() const { return bytes_written_; }
  const std::string& path() const { return path_; }

 private:
  /// Records the first error, closes the stream, and deletes the partial
  /// file (unless preserve_on_error). Returns the sticky status for
  /// tail-calling.
  Status Fail(Status status);

  /// Deletes the file being written unless options say to keep it.
  void RemoveWritePath();

  std::FILE* file_ = nullptr;
  std::string path_;        ///< destination path
  std::string write_path_;  ///< file actually being written (tmp if atomic)
  Options options_;
  Status status_;
  uint64_t bytes_written_ = 0;
};

}  // namespace csj

#endif  // CSJ_STORAGE_OUTPUT_FILE_H_

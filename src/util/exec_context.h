#ifndef CSJ_UTIL_EXEC_CONTEXT_H_
#define CSJ_UTIL_EXEC_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>

#include "util/status.h"

/// \file
/// Resource governance for long-running work: ExecContext and MemoryBudget.
///
/// Every join driver — serial, parallel, ego, metric, checkpointed — can run
/// for hours and allocate gigabytes. An `ExecContext` bundles the three
/// constraints a caller (an operator, a batch scheduler, the future
/// `csj_serve` admission controller) wants enforced on such a run:
///
///   * a **deadline** (monotonic clock, armed as "now + N ms");
///   * an external **cancel flag** (a `std::atomic<bool>` raised by a signal
///     handler or an operator stop);
///   * a **MemoryBudget** — atomic reserve/release accounting that big
///     allocations charge before committing.
///
/// Drivers poll `ShouldStop()` at every task boundary (node visit, task
/// start, EGO range split). The poll is designed to be cheap enough for a
/// hot loop: one relaxed atomic load when nothing has tripped, one more for
/// the cancel flag, and a clock read only every `kDeadlineStride` polls.
/// Once any constraint trips, the context carries a **sticky Status**
/// (`kDeadlineExceeded` / `kCancelled` / `kResourceExhausted` / an injected
/// error such as a paged-tree read fault) that every later poll re-reports;
/// the run unwinds at its next boundary and surfaces the status through
/// `JoinStats::status` — no crash, no runaway, no partial-output artifact.
///
/// Contexts **chain**: a child context (e.g. one per query inside a server)
/// can point at a parent, and `ShouldStop()` consults the parent after the
/// child's own constraints. Budgets chain the same way: a child
/// `MemoryBudget` carves its reservations out of the parent's quota, so a
/// per-query limit and a process-wide limit compose.
///
/// Thread safety: `ShouldStop()`, `Trip()` and every `MemoryBudget` method
/// are safe to call concurrently (parallel-join workers share one context).
/// The setters are not — configure the context before handing it to a run.
///
/// Decisions are observable through the `resource.*` metrics: peak bytes
/// (`resource.peak_bytes`), reservation denials (`resource.denials`), and
/// graceful degradations (`resource.window_degradations`,
/// `resource.pool_sheds`) — see docs/ROBUSTNESS.md.

namespace csj {

/// Hierarchical memory accounting. `TryReserve` either commits the whole
/// reservation (against this budget and every ancestor) or commits nothing.
/// A limit of 0 means "unlimited" — the budget still tracks usage and peak,
/// which is how `resource.peak_bytes` gets recorded on unbounded runs.
class MemoryBudget {
 public:
  explicit MemoryBudget(uint64_t limit_bytes = 0, MemoryBudget* parent = nullptr)
      : limit_(limit_bytes), parent_(parent) {}

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// Reserves `bytes` against this budget and its ancestors. Returns false
  /// (and records a `resource.denials` metric) if any level would exceed its
  /// limit; on failure nothing is charged anywhere.
  bool TryReserve(uint64_t bytes);

  /// Returns `bytes` previously reserved. Releasing more than was reserved
  /// is a programming error (checked).
  void Release(uint64_t bytes);

  uint64_t used() const { return used_.load(std::memory_order_relaxed); }
  uint64_t limit() const { return limit_; }
  uint64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  uint64_t denials() const { return denials_.load(std::memory_order_relaxed); }
  MemoryBudget* parent() const { return parent_; }

  /// True when a bounded budget is above `fraction` of its limit (or any
  /// ancestor is). Degradation hooks (window shrink, buffer-pool shed) use
  /// this to act *before* a reservation is denied.
  bool UnderPressure(double fraction = 0.85) const;

  /// Headroom in bytes; UINT64_MAX when unlimited (at every level).
  uint64_t Available() const;

 private:
  const uint64_t limit_;  // 0 = unlimited
  MemoryBudget* const parent_;
  std::atomic<uint64_t> used_{0};
  std::atomic<uint64_t> peak_{0};
  std::atomic<uint64_t> denials_{0};
};

/// RAII reservation against a MemoryBudget. Move-only; releases on
/// destruction. A default-constructed or null-budget charge is a no-op that
/// always succeeds — call sites stay unconditional.
class ScopedCharge {
 public:
  ScopedCharge() = default;
  ~ScopedCharge() { Release(); }

  ScopedCharge(ScopedCharge&& other) noexcept
      : budget_(other.budget_), bytes_(other.bytes_) {
    other.budget_ = nullptr;
    other.bytes_ = 0;
  }
  ScopedCharge& operator=(ScopedCharge&& other) noexcept {
    if (this != &other) {
      Release();
      budget_ = other.budget_;
      bytes_ = other.bytes_;
      other.budget_ = nullptr;
      other.bytes_ = 0;
    }
    return *this;
  }
  ScopedCharge(const ScopedCharge&) = delete;
  ScopedCharge& operator=(const ScopedCharge&) = delete;

  /// Replaces the current reservation with `bytes` against `budget`.
  /// Returns false (holding nothing) if the budget denies it. A null budget
  /// always succeeds.
  bool Acquire(MemoryBudget* budget, uint64_t bytes);

  /// Grows or shrinks the held reservation to `new_bytes` (same budget).
  /// On denial the original reservation is kept and false is returned.
  bool Resize(uint64_t new_bytes);

  void Release();

  uint64_t bytes() const { return bytes_; }
  MemoryBudget* budget() const { return budget_; }

 private:
  MemoryBudget* budget_ = nullptr;
  uint64_t bytes_ = 0;
};

/// Deadline + cancel + budget, polled at task boundaries. See file comment.
class ExecContext {
 public:
  /// Clock reads are amortized: the deadline is checked once every this
  /// many `ShouldStop()` polls (and always on the first poll).
  static constexpr uint32_t kDeadlineStride = 64;

  ExecContext() = default;

  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  // -- configuration (before the run; not thread-safe) ---------------------

  /// Arms the deadline at now + `ms`. `ms == 0` leaves the context without
  /// a deadline (the documented meaning of `JoinOptions::deadline_ms = 0`).
  void SetDeadlineAfterMs(uint64_t ms);
  void SetDeadline(std::chrono::steady_clock::time_point deadline);

  /// Installs an external cancel flag (not owned; may be flipped from a
  /// signal handler). Null clears it.
  void SetCancelFlag(const std::atomic<bool>* flag) { cancel_ = flag; }

  /// Installs the memory budget big allocations charge (not owned).
  void SetMemoryBudget(MemoryBudget* budget) { budget_ = budget; }

  /// Chains this context under `parent`: `ShouldStop()` also consults the
  /// parent, and `memory_budget()` falls back to the parent's budget.
  void SetParent(const ExecContext* parent) { parent_ = parent; }

  // -- hot path (thread-safe) ----------------------------------------------

  /// True once any constraint has tripped (sticky). Polling is cheap; see
  /// the file comment for the exact cost.
  bool ShouldStop() const {
    if (stopped_.load(std::memory_order_relaxed)) return true;
    if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
      Trip(Status::Cancelled("cancel flag raised"));
      return true;
    }
    if (has_deadline_ && DeadlinePollDue() && DeadlineExpiredNow()) {
      Trip(Status::DeadlineExceeded("deadline expired"));
      return true;
    }
    if (parent_ != nullptr && parent_->ShouldStop()) return true;
    return false;
  }

  /// Like `ShouldStop()`, but always reads the clock when a deadline is
  /// armed. For *infrequent* pollers — a checkpoint runner checking once per
  /// round — where the stride amortization could skip the deadline check for
  /// the whole run. Hot loops should keep using `ShouldStop()`.
  bool ShouldStopNow() const {
    if (has_deadline_ && !stopped_.load(std::memory_order_relaxed) &&
        DeadlineExpiredNow()) {
      Trip(Status::DeadlineExceeded("deadline expired"));
    }
    if (parent_ != nullptr && parent_->ShouldStopNow()) return true;
    return ShouldStop();
  }

  /// Records the first non-OK status; later calls are ignored (first error
  /// wins, matching the sink convention). Safe from any thread. OK statuses
  /// are ignored.
  void Trip(Status status) const;

  /// The sticky status: OK while running, else the first trip (consulting
  /// the parent chain). Does not itself re-evaluate deadline/cancel — call
  /// `ShouldStop()` first at a boundary.
  Status status() const;

  /// This context's budget, or the nearest ancestor's. Null when ungoverned.
  MemoryBudget* memory_budget() const {
    if (budget_ != nullptr) return budget_;
    return parent_ != nullptr ? parent_->memory_budget() : nullptr;
  }

  /// Reserves `bytes` for `what` against `memory_budget()`, tripping the
  /// context with `kResourceExhausted` on denial. With no budget installed
  /// this always succeeds and charges nothing.
  bool TryCharge(uint64_t bytes, const char* what) const;

  bool has_deadline() const { return has_deadline_; }
  std::chrono::steady_clock::time_point deadline() const { return deadline_; }

 private:
  bool DeadlinePollDue() const {
    // Wrapping counter shared by all pollers. Exactness does not matter —
    // only that the clock is read ~1/stride polls — so a load + store
    // (which may lose concurrent increments) beats a fetch_add: no RMW in
    // the hot poll, and the cost shows up directly in bench_governance.
    const uint32_t count = deadline_poll_.load(std::memory_order_relaxed);
    deadline_poll_.store(count + 1, std::memory_order_relaxed);
    return count % kDeadlineStride == 0;
  }
  bool DeadlineExpiredNow() const {
    return std::chrono::steady_clock::now() >= deadline_;
  }

  // Configuration (set before the run).
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  const std::atomic<bool>* cancel_ = nullptr;
  MemoryBudget* budget_ = nullptr;
  const ExecContext* parent_ = nullptr;

  // Sticky trip state (mutable: polling a `const ExecContext*` may trip it).
  mutable std::atomic<bool> stopped_{false};
  mutable std::atomic<uint32_t> deadline_poll_{0};
  mutable std::mutex status_mutex_;
  mutable Status status_;  // guarded by status_mutex_; valid once stopped_
};

}  // namespace csj

#endif  // CSJ_UTIL_EXEC_CONTEXT_H_

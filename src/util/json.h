#ifndef CSJ_UTIL_JSON_H_
#define CSJ_UTIL_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "util/status.h"

/// \file
/// Minimal JSON document model, writer and parser.
///
/// The repository's machine-readable outputs (bench `BENCH_*.json` records,
/// metrics snapshots) are plain JSON so any external tool can consume them.
/// Rather than pull in a dependency for a few hundred lines, this header
/// provides a small value tree:
///
///     json::Value doc = json::Object{};
///     doc["bench"] = "exp1";
///     doc["runs"].Append(json::Object{});
///     std::string text = json::Write(doc, /*pretty=*/true);
///
/// and an exact inverse, `json::Parse`, used by the snapshot round-trip
/// tests and by tools that read the bench records back.
///
/// Numbers keep their integer identity: values written from uint64/int64
/// parse back as uint64/int64 (no silent double round-trip), which matters
/// for 64-bit counters. Doubles are written with enough digits (%.17g) to
/// round-trip bit-exactly. Supported input is standard JSON minus exotica:
/// no surrogate-pair \u escapes (non-BMP input is passed through as raw
/// UTF-8 bytes anyway) and a nesting depth limit of 200.

namespace csj::json {

class Value;

using Array = std::vector<Value>;
/// std::map keeps object keys sorted — serialization is deterministic,
/// which the tests and diffable bench artifacts rely on.
using Object = std::map<std::string, Value>;

/// One JSON value: null, bool, integer (signed/unsigned), double, string,
/// array or object.
class Value {
 public:
  Value() : v_(nullptr) {}
  Value(std::nullptr_t) : v_(nullptr) {}            // NOLINT
  Value(bool b) : v_(b) {}                          // NOLINT
  Value(int i) : v_(static_cast<int64_t>(i)) {}     // NOLINT
  Value(int64_t i) : v_(i) {}                       // NOLINT
  Value(uint64_t u) : v_(u) {}                      // NOLINT
  Value(double d) : v_(d) {}                        // NOLINT
  Value(const char* s) : v_(std::string(s)) {}      // NOLINT
  Value(std::string s) : v_(std::move(s)) {}        // NOLINT
  Value(Array a) : v_(std::move(a)) {}              // NOLINT
  Value(Object o) : v_(std::move(o)) {}             // NOLINT

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_uint() const { return std::holds_alternative<uint64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<Array>(v_); }
  bool is_object() const { return std::holds_alternative<Object>(v_); }
  /// Any of int / uint / double.
  bool is_number() const { return is_int() || is_uint() || is_double(); }

  bool AsBool() const { return std::get<bool>(v_); }
  int64_t AsInt() const;     ///< int64 value (accepts in-range uint64)
  uint64_t AsUint() const;   ///< uint64 value (accepts non-negative int64)
  double AsDouble() const;   ///< numeric value widened to double
  const std::string& AsString() const { return std::get<std::string>(v_); }
  const Array& AsArray() const { return std::get<Array>(v_); }
  Array& AsArray() { return std::get<Array>(v_); }
  const Object& AsObject() const { return std::get<Object>(v_); }
  Object& AsObject() { return std::get<Object>(v_); }

  /// Object access; converts a null value into an empty object first, so
  /// building documents reads naturally: `doc["a"]["b"] = 1`.
  Value& operator[](const std::string& key);
  /// Lookup in a const object; returns nullptr when absent or not an object.
  const Value* Find(const std::string& key) const;

  /// Appends to an array; converts a null value into an empty array first.
  void Append(Value element);

  size_t size() const;  ///< array/object element count (0 otherwise)

  friend bool operator==(const Value& a, const Value& b) {
    return a.v_ == b.v_;
  }

 private:
  std::variant<std::nullptr_t, bool, int64_t, uint64_t, double, std::string,
               Array, Object>
      v_;
};

/// Serializes `value`. `pretty` adds two-space indentation and newlines.
std::string Write(const Value& value, bool pretty = false);

/// Parses a complete JSON document (rejects trailing garbage).
Result<Value> Parse(const std::string& text);

/// Escapes `s` as the *contents* of a JSON string literal (no quotes).
std::string EscapeString(const std::string& s);

}  // namespace csj::json

#endif  // CSJ_UTIL_JSON_H_

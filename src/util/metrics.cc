#include "util/metrics.h"

#include <algorithm>
#include <bit>
#include <map>
#include <memory>
#include <mutex>

#include "util/check.h"
#include "util/format.h"
#include "util/timer.h"

namespace csj::metrics {
namespace {

/// The registry owns every metric; entries are created on first Get* and
/// never removed, so handed-out pointers stay valid for the process
/// lifetime. The mutex only guards registration and snapshotting — updates
/// go straight to the atomics.
struct Registry {
  std::mutex mu;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

template <typename T, typename OtherA, typename OtherB>
T* GetOrCreate(std::map<std::string, std::unique_ptr<T>>* kind,
               const OtherA& other_a, const OtherB& other_b,
               const std::string& name) {
  CSJ_CHECK(!name.empty()) << "metric name must not be empty";
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  CSJ_CHECK(other_a.find(name) == other_a.end() &&
            other_b.find(name) == other_b.end())
      << "metric '" << name << "' already registered as a different kind";
  auto [it, inserted] = kind->try_emplace(name);
  if (inserted) it->second = std::make_unique<T>(name);
  return it->second.get();
}

}  // namespace

void Histogram::Record(uint64_t value) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  buckets_[static_cast<size_t>(std::bit_width(value))].fetch_add(
      1, std::memory_order_relaxed);
  // Relaxed CAS min/max: contention is rare and staleness is harmless.
  uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
}

std::array<uint64_t, Histogram::kBuckets> Histogram::BucketCounts() const {
  std::array<uint64_t, kBuckets> out;
  for (int i = 0; i < kBuckets; ++i) {
    out[static_cast<size_t>(i)] =
        buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }
  return out;
}

Counter* GetCounter(const std::string& name) {
  Registry& r = GetRegistry();
  return GetOrCreate(&r.counters, r.gauges, r.histograms, name);
}

Gauge* GetGauge(const std::string& name) {
  Registry& r = GetRegistry();
  return GetOrCreate(&r.gauges, r.counters, r.histograms, name);
}

Histogram* GetHistogram(const std::string& name) {
  Registry& r = GetRegistry();
  return GetOrCreate(&r.histograms, r.counters, r.gauges, name);
}

void ResetAll() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (auto& [name, counter] : registry.counters) counter->Reset();
  for (auto& [name, gauge] : registry.gauges) gauge->Reset();
  for (auto& [name, histogram] : registry.histograms) histogram->Reset();
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-quantile among `count` recorded values, 1-based.
  const double rank = q * static_cast<double>(count - 1) + 1.0;
  uint64_t seen = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    if (static_cast<double>(seen + buckets[b]) >= rank) {
      // Interpolate within [2^(b-1), 2^b); bucket 0 holds only zeros.
      if (b == 0) return 0.0;
      const double lo = b == 1 ? 1.0 : static_cast<double>(1ull << (b - 1));
      const double hi = b >= 64 ? 1.8446744073709552e19
                                : static_cast<double>(1ull << b);
      const double within =
          (rank - static_cast<double>(seen)) / static_cast<double>(buckets[b]);
      const double estimate = lo + (hi - lo) * within;
      return std::clamp(estimate, static_cast<double>(min),
                        static_cast<double>(max));
    }
    seen += buckets[b];
  }
  return static_cast<double>(max);
}

MetricsSnapshot Snapshot() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(registry.counters.size());
  for (const auto& [name, counter] : registry.counters) {
    snapshot.counters.emplace_back(name, counter->value());
  }
  snapshot.gauges.reserve(registry.gauges.size());
  for (const auto& [name, gauge] : registry.gauges) {
    snapshot.gauges.emplace_back(name, gauge->value());
  }
  snapshot.histograms.reserve(registry.histograms.size());
  for (const auto& [name, histogram] : registry.histograms) {
    HistogramSnapshot h;
    h.name = name;
    h.count = histogram->count();
    h.sum = histogram->sum();
    const uint64_t raw_min = histogram->min();
    h.min = raw_min == UINT64_MAX ? 0 : raw_min;
    h.max = histogram->max();
    h.buckets = histogram->BucketCounts();
    snapshot.histograms.push_back(std::move(h));
  }
  return snapshot;
}

MetricsSnapshot DiffSnapshots(const MetricsSnapshot& begin,
                              const MetricsSnapshot& end) {
  MetricsSnapshot diff;
  // Snapshots are sorted by name within each kind, so each section is a
  // linear merge keyed on name.
  auto baseline = [](const auto& sorted_pairs, const std::string& name,
                     auto missing) {
    const auto it = std::lower_bound(
        sorted_pairs.begin(), sorted_pairs.end(), name,
        [](const auto& pair, const std::string& key) {
          return pair.first < key;
        });
    return it != sorted_pairs.end() && it->first == name ? it->second
                                                         : missing;
  };
  for (const auto& [name, value] : end.counters) {
    const uint64_t before = baseline(begin.counters, name, uint64_t{0});
    // Clamp instead of wrapping: a ResetAll racing the window would
    // otherwise report a ~2^64 "delta".
    const uint64_t delta = value >= before ? value - before : 0;
    if (delta != 0) diff.counters.emplace_back(name, delta);
  }
  for (const auto& [name, value] : end.gauges) {
    // Gauges carry last-value semantics; report the end value.
    const bool known = baseline(begin.gauges, name, int64_t{0}) != 0 ||
                       value != 0;
    if (known) diff.gauges.emplace_back(name, value);
  }
  for (const auto& h : end.histograms) {
    const auto it = std::lower_bound(
        begin.histograms.begin(), begin.histograms.end(), h.name,
        [](const HistogramSnapshot& snap, const std::string& key) {
          return snap.name < key;
        });
    const HistogramSnapshot* before =
        it != begin.histograms.end() && it->name == h.name ? &*it : nullptr;
    HistogramSnapshot d;
    d.name = h.name;
    const uint64_t count_before = before != nullptr ? before->count : 0;
    const uint64_t sum_before = before != nullptr ? before->sum : 0;
    d.count = h.count >= count_before ? h.count - count_before : 0;
    d.sum = h.sum >= sum_before ? h.sum - sum_before : 0;
    if (d.count == 0) continue;
    // Min/max are process-lifetime extremes; a window cannot recover its
    // own. Report the end extremes as documented.
    d.min = h.min;
    d.max = h.max;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      const uint64_t bucket_before =
          before != nullptr ? before->buckets[static_cast<size_t>(b)] : 0;
      const uint64_t bucket_end = h.buckets[static_cast<size_t>(b)];
      d.buckets[static_cast<size_t>(b)] =
          bucket_end >= bucket_before ? bucket_end - bucket_before : 0;
    }
    diff.histograms.push_back(std::move(d));
  }
  return diff;
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    out += StrFormat("counter   %-36s %llu\n", name.c_str(),
                     static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : gauges) {
    out += StrFormat("gauge     %-36s %lld\n", name.c_str(),
                     static_cast<long long>(value));
  }
  for (const auto& h : histograms) {
    out += StrFormat(
        "histogram %-36s count=%llu mean=%.1f p50=%.1f p99=%.1f max=%llu\n",
        h.name.c_str(), static_cast<unsigned long long>(h.count), h.Mean(),
        h.P50(), h.P99(), static_cast<unsigned long long>(h.max));
  }
  return out;
}

json::Value MetricsSnapshot::ToJsonValue() const {
  json::Value doc = json::Object{};
  json::Value& counters_obj = doc["counters"];
  counters_obj = json::Object{};
  for (const auto& [name, value] : counters) counters_obj[name] = value;
  json::Value& gauges_obj = doc["gauges"];
  gauges_obj = json::Object{};
  for (const auto& [name, value] : gauges) gauges_obj[name] = value;
  json::Value& histograms_obj = doc["histograms"];
  histograms_obj = json::Object{};
  for (const auto& h : histograms) {
    json::Value entry = json::Object{};
    entry["count"] = h.count;
    entry["sum"] = h.sum;
    entry["min"] = h.min;
    entry["max"] = h.max;
    entry["mean"] = h.Mean();
    entry["p50"] = h.P50();
    entry["p99"] = h.P99();
    // Sparse bucket map "bit_width -> count": most of the 65 buckets are
    // empty, and derived quantiles above are recomputable from this.
    json::Value buckets = json::Object{};
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] != 0) buckets[StrFormat("%zu", b)] = h.buckets[b];
    }
    entry["buckets"] = std::move(buckets);
    histograms_obj[h.name] = std::move(entry);
  }
  return doc;
}

std::string MetricsSnapshot::ToJson(bool pretty) const {
  return json::Write(ToJsonValue(), pretty);
}

Result<MetricsSnapshot> MetricsSnapshot::FromJsonValue(
    const json::Value& value) {
  if (!value.is_object()) {
    return Status::InvalidArgument("metrics snapshot: not a JSON object");
  }
  MetricsSnapshot snapshot;
  if (const json::Value* counters = value.Find("counters")) {
    if (!counters->is_object()) {
      return Status::InvalidArgument("metrics snapshot: 'counters' not an object");
    }
    for (const auto& [name, v] : counters->AsObject()) {
      if (!v.is_number()) {
        return Status::InvalidArgument("metrics snapshot: counter '" + name +
                                       "' not a number");
      }
      snapshot.counters.emplace_back(name, v.AsUint());
    }
  }
  if (const json::Value* gauges = value.Find("gauges")) {
    if (!gauges->is_object()) {
      return Status::InvalidArgument("metrics snapshot: 'gauges' not an object");
    }
    for (const auto& [name, v] : gauges->AsObject()) {
      if (!v.is_number()) {
        return Status::InvalidArgument("metrics snapshot: gauge '" + name +
                                       "' not a number");
      }
      snapshot.gauges.emplace_back(name, v.AsInt());
    }
  }
  if (const json::Value* histograms = value.Find("histograms")) {
    if (!histograms->is_object()) {
      return Status::InvalidArgument(
          "metrics snapshot: 'histograms' not an object");
    }
    for (const auto& [name, v] : histograms->AsObject()) {
      if (!v.is_object()) {
        return Status::InvalidArgument("metrics snapshot: histogram '" + name +
                                       "' not an object");
      }
      HistogramSnapshot h;
      h.name = name;
      auto read = [&v](const char* key, uint64_t* out) {
        const json::Value* field = v.Find(key);
        if (field == nullptr || !field->is_number()) {
          return Status::InvalidArgument(
              StrFormat("metrics snapshot: histogram missing '%s'", key));
        }
        *out = field->AsUint();
        return Status::OK();
      };
      CSJ_RETURN_IF_ERROR(read("count", &h.count));
      CSJ_RETURN_IF_ERROR(read("sum", &h.sum));
      CSJ_RETURN_IF_ERROR(read("min", &h.min));
      CSJ_RETURN_IF_ERROR(read("max", &h.max));
      if (const json::Value* buckets = v.Find("buckets");
          buckets != nullptr && buckets->is_object()) {
        for (const auto& [index_text, count] : buckets->AsObject()) {
          const long index = std::atol(index_text.c_str());
          if (index < 0 || index >= Histogram::kBuckets || !count.is_number()) {
            return Status::InvalidArgument(
                "metrics snapshot: bad histogram bucket '" + index_text + "'");
          }
          h.buckets[static_cast<size_t>(index)] = count.AsUint();
        }
      }
      snapshot.histograms.push_back(std::move(h));
    }
  }
  return snapshot;
}

Result<MetricsSnapshot> MetricsSnapshot::FromJson(const std::string& text) {
  CSJ_ASSIGN_OR_RETURN(const json::Value doc, json::Parse(text));
  return FromJsonValue(doc);
}

}  // namespace csj::metrics

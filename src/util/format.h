#ifndef CSJ_UTIL_FORMAT_H_
#define CSJ_UTIL_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

/// \file
/// Small string-formatting helpers shared by sinks, benches and examples.

namespace csj {

/// Number of decimal digits needed to print `max_value` (at least 1).
/// Used to compute the zero-padded id width of the paper's output format.
int DecimalWidth(uint64_t max_value);

/// Zero-pads `value` to `width` decimal digits, e.g. ZeroPad(7, 4) == "0007".
/// Values wider than `width` are printed in full.
std::string ZeroPad(uint64_t value, int width);

/// "1.21 GB", "532 B", ... (powers of 1024).
std::string HumanBytes(uint64_t bytes);

/// "1.2 s", "34.5 ms", "120 us", ...
std::string HumanDuration(double seconds);

/// "12,345,678" — thousands separators for readability in reports.
std::string WithThousands(uint64_t value);

/// Joins string pieces with a separator.
std::string StrJoin(const std::vector<std::string>& pieces,
                    const std::string& separator);

/// printf-style into std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace csj

#endif  // CSJ_UTIL_FORMAT_H_

#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/check.h"
#include "util/format.h"

namespace csj::json {

int64_t Value::AsInt() const {
  if (is_uint()) {
    const uint64_t u = std::get<uint64_t>(v_);
    CSJ_CHECK(u <= static_cast<uint64_t>(INT64_MAX)) << "uint64 overflows int64";
    return static_cast<int64_t>(u);
  }
  return std::get<int64_t>(v_);
}

uint64_t Value::AsUint() const {
  if (is_int()) {
    const int64_t i = std::get<int64_t>(v_);
    CSJ_CHECK(i >= 0) << "negative value read as uint64";
    return static_cast<uint64_t>(i);
  }
  return std::get<uint64_t>(v_);
}

double Value::AsDouble() const {
  if (is_int()) return static_cast<double>(std::get<int64_t>(v_));
  if (is_uint()) return static_cast<double>(std::get<uint64_t>(v_));
  return std::get<double>(v_);
}

Value& Value::operator[](const std::string& key) {
  if (is_null()) v_ = Object{};
  return std::get<Object>(v_)[key];
}

const Value* Value::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const Object& object = std::get<Object>(v_);
  auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

void Value::Append(Value element) {
  if (is_null()) v_ = Array{};
  std::get<Array>(v_).push_back(std::move(element));
}

size_t Value::size() const {
  if (is_array()) return std::get<Array>(v_).size();
  if (is_object()) return std::get<Object>(v_).size();
  return 0;
}

std::string EscapeString(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  return out;
}

namespace {

void WriteDouble(double d, std::string* out) {
  // NaN/Inf are not representable in JSON; emit null like most encoders.
  if (!std::isfinite(d)) {
    *out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  *out += buf;
  // Keep the number recognizably floating point so it parses back as one.
  if (std::strpbrk(buf, ".eEn") == nullptr) *out += ".0";
}

void WriteValue(const Value& value, bool pretty, int indent,
                std::string* out) {
  auto newline = [&](int level) {
    if (!pretty) return;
    out->push_back('\n');
    out->append(static_cast<size_t>(level) * 2, ' ');
  };
  if (value.is_null()) {
    *out += "null";
  } else if (value.is_bool()) {
    *out += value.AsBool() ? "true" : "false";
  } else if (value.is_int()) {
    *out += StrFormat("%lld", static_cast<long long>(value.AsInt()));
  } else if (value.is_uint()) {
    *out += StrFormat("%llu", static_cast<unsigned long long>(value.AsUint()));
  } else if (value.is_double()) {
    WriteDouble(value.AsDouble(), out);
  } else if (value.is_string()) {
    out->push_back('"');
    *out += EscapeString(value.AsString());
    out->push_back('"');
  } else if (value.is_array()) {
    const Array& array = value.AsArray();
    if (array.empty()) {
      *out += "[]";
      return;
    }
    out->push_back('[');
    for (size_t i = 0; i < array.size(); ++i) {
      if (i > 0) out->push_back(',');
      newline(indent + 1);
      WriteValue(array[i], pretty, indent + 1, out);
    }
    newline(indent);
    out->push_back(']');
  } else {
    const Object& object = value.AsObject();
    if (object.empty()) {
      *out += "{}";
      return;
    }
    out->push_back('{');
    bool first = true;
    for (const auto& [key, element] : object) {
      if (!first) out->push_back(',');
      first = false;
      newline(indent + 1);
      out->push_back('"');
      *out += EscapeString(key);
      *out += pretty ? "\": " : "\":";
      WriteValue(element, pretty, indent + 1, out);
    }
    newline(indent);
    out->push_back('}');
  }
}

/// Recursive-descent parser over the raw text. Positions are tracked for
/// error messages; depth is bounded to keep malicious input from smashing
/// the stack.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Value> ParseDocument() {
    Value value;
    CSJ_RETURN_IF_ERROR(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 200;

  Status Error(const std::string& message) const {
    return Status::InvalidArgument(
        StrFormat("json: %s at offset %zu", message.c_str(), pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) return Error(StrFormat("expected '%c'", c));
    return Status::OK();
  }

  Status ParseValue(Value* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return ParseObject(out, depth);
      case '[': return ParseArray(out, depth);
      case '"': return ParseString(out);
      case 't': return ParseLiteral("true", Value(true), out);
      case 'f': return ParseLiteral("false", Value(false), out);
      case 'n': return ParseLiteral("null", Value(nullptr), out);
      default: return ParseNumber(out);
    }
  }

  Status ParseLiteral(const char* word, Value value, Value* out) {
    const size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) != 0) {
      return Error(StrFormat("expected '%s'", word));
    }
    pos_ += len;
    *out = std::move(value);
    return Status::OK();
  }

  Status ParseObject(Value* out, int depth) {
    CSJ_RETURN_IF_ERROR(Expect('{'));
    Object object;
    SkipWhitespace();
    if (Consume('}')) {
      *out = std::move(object);
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      Value key;
      CSJ_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      CSJ_RETURN_IF_ERROR(Expect(':'));
      Value element;
      CSJ_RETURN_IF_ERROR(ParseValue(&element, depth + 1));
      object[key.AsString()] = std::move(element);
      SkipWhitespace();
      if (Consume(',')) continue;
      CSJ_RETURN_IF_ERROR(Expect('}'));
      break;
    }
    *out = std::move(object);
    return Status::OK();
  }

  Status ParseArray(Value* out, int depth) {
    CSJ_RETURN_IF_ERROR(Expect('['));
    Array array;
    SkipWhitespace();
    if (Consume(']')) {
      *out = std::move(array);
      return Status::OK();
    }
    while (true) {
      Value element;
      CSJ_RETURN_IF_ERROR(ParseValue(&element, depth + 1));
      array.push_back(std::move(element));
      SkipWhitespace();
      if (Consume(',')) continue;
      CSJ_RETURN_IF_ERROR(Expect(']'));
      break;
    }
    *out = std::move(array);
    return Status::OK();
  }

  Status ParseString(Value* out) {
    if (!Consume('"')) return Error("expected string");
    std::string s;
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        s.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': s.push_back('"'); break;
        case '\\': s.push_back('\\'); break;
        case '/': s.push_back('/'); break;
        case 'b': s.push_back('\b'); break;
        case 'f': s.push_back('\f'); break;
        case 'n': s.push_back('\n'); break;
        case 'r': s.push_back('\r'); break;
        case 't': s.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else return Error("bad hex digit in \\u escape");
          }
          if (code >= 0xD800 && code <= 0xDFFF) {
            return Error("surrogate \\u escapes are not supported");
          }
          // Encode the BMP code point as UTF-8.
          if (code < 0x80) {
            s.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            s.push_back(static_cast<char>(0xC0 | (code >> 6)));
            s.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            s.push_back(static_cast<char>(0xE0 | (code >> 12)));
            s.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            s.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("unknown escape character");
      }
    }
    *out = std::move(s);
    return Status::OK();
  }

  Status ParseNumber(Value* out) {
    const size_t start = pos_;
    bool negative = false;
    bool floating = false;
    if (Consume('-')) negative = true;
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return Error("malformed number");
    }
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      floating = true;
      ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Error("malformed number");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      floating = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Error("malformed number");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (!floating) {
      // Integers keep 64-bit identity; fall back to double only on overflow.
      errno = 0;
      char* end = nullptr;
      if (negative) {
        const long long v = std::strtoll(token.c_str(), &end, 10);
        if (errno != ERANGE && end == token.c_str() + token.size()) {
          *out = static_cast<int64_t>(v);
          return Status::OK();
        }
      } else {
        const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
        if (errno != ERANGE && end == token.c_str() + token.size()) {
          *out = static_cast<uint64_t>(v);
          return Status::OK();
        }
      }
    }
    *out = std::strtod(token.c_str(), nullptr);
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

std::string Write(const Value& value, bool pretty) {
  std::string out;
  WriteValue(value, pretty, 0, &out);
  if (pretty) out.push_back('\n');
  return out;
}

Result<Value> Parse(const std::string& text) {
  return Parser(text).ParseDocument();
}

}  // namespace csj::json

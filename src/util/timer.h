#ifndef CSJ_UTIL_TIMER_H_
#define CSJ_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

/// \file
/// Wall-clock timing used by the benchmark harnesses.
///
/// The paper reports similarity-join runtimes that include all disk accesses;
/// our harnesses time whole join invocations with WallTimer and split
/// computation from write time with StopwatchAccumulator (Experiment 3).

namespace csj {

/// Monotonic wall-clock timer.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction/Restart, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed time in nanoseconds.
  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates time over many start/stop intervals (e.g. total time spent in
/// sink writes during one join).
class StopwatchAccumulator {
 public:
  void Start() { timer_.Restart(); }
  void Stop() { total_nanos_ += timer_.ElapsedNanos(); }

  void Reset() { total_nanos_ = 0; }

  uint64_t TotalNanos() const { return total_nanos_; }
  double TotalSeconds() const { return static_cast<double>(total_nanos_) * 1e-9; }
  double TotalMillis() const { return static_cast<double>(total_nanos_) * 1e-6; }

 private:
  WallTimer timer_;
  uint64_t total_nanos_ = 0;
};

/// RAII interval on a StopwatchAccumulator.
class ScopedStopwatch {
 public:
  explicit ScopedStopwatch(StopwatchAccumulator* acc) : acc_(acc) {
    if (acc_ != nullptr) acc_->Start();
  }
  ~ScopedStopwatch() {
    if (acc_ != nullptr) acc_->Stop();
  }

  ScopedStopwatch(const ScopedStopwatch&) = delete;
  ScopedStopwatch& operator=(const ScopedStopwatch&) = delete;

 private:
  StopwatchAccumulator* acc_;
};

}  // namespace csj

#endif  // CSJ_UTIL_TIMER_H_

#include "util/format.h"

#include <cstdarg>
#include <cstdio>

namespace csj {

int DecimalWidth(uint64_t max_value) {
  int width = 1;
  while (max_value >= 10) {
    max_value /= 10;
    ++width;
  }
  return width;
}

std::string ZeroPad(uint64_t value, int width) {
  std::string digits = std::to_string(value);
  if (static_cast<int>(digits.size()) >= width) return digits;
  return std::string(width - digits.size(), '0') + digits;
}

std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  if (unit == 0) return StrFormat("%llu B", static_cast<unsigned long long>(bytes));
  return StrFormat("%.2f %s", value, kUnits[unit]);
}

std::string HumanDuration(double seconds) {
  if (seconds >= 1.0) return StrFormat("%.3f s", seconds);
  if (seconds >= 1e-3) return StrFormat("%.3f ms", seconds * 1e3);
  if (seconds >= 1e-6) return StrFormat("%.3f us", seconds * 1e6);
  return StrFormat("%.0f ns", seconds * 1e9);
}

std::string WithThousands(uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  return std::string(out.rbegin(), out.rend());
}

std::string StrJoin(const std::vector<std::string>& pieces,
                    const std::string& separator) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i != 0) out += separator;
    out += pieces[i];
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int size = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(size > 0 ? static_cast<size_t>(size) : 0, '\0');
  if (size > 0) {
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace csj

#include "util/table.h"

#include <algorithm>

#include "util/check.h"

namespace csj {

namespace {

/// Escapes a CSV cell if it contains a comma, quote or newline.
std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

}  // namespace

void Table::AddRow(std::vector<std::string> row) {
  CSJ_CHECK_EQ(row.size(), header_.size())
      << "row width mismatch in table '" << title_ << "'";
  rows_.push_back(std::move(row));
}

std::string Table::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c != 0) line += "  ";
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
    }
    // Trim trailing padding.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };

  std::string out;
  out += "== " + title_ + " ==\n";
  out += render_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c ? 2 : 0);
  out += std::string(total, '-') + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void Table::Print(std::FILE* out) const {
  const std::string rendered = ToString();
  std::fwrite(rendered.data(), 1, rendered.size(), out);
  std::fflush(out);
}

Status Table::WriteCsv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  auto write_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c != 0) std::fputc(',', f);
      const std::string cell = CsvEscape(row[c]);
      std::fwrite(cell.data(), 1, cell.size(), f);
    }
    std::fputc('\n', f);
  };
  write_row(header_);
  for (const auto& row : rows_) write_row(row);
  std::fclose(f);
  return Status::OK();
}

}  // namespace csj

#ifndef CSJ_UTIL_FAILPOINT_H_
#define CSJ_UTIL_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

/// \file
/// Deterministic fault injection ("failpoints").
///
/// A failpoint is a named hook compiled into error-handling code:
///
///     if (CSJ_FAILPOINT("output_file.append")) {
///       return Fail(Status::IoError("injected write fault"));
///     }
///
/// By default every failpoint is off and the hook costs one relaxed atomic
/// load (and nothing at all when the build disables the subsystem, see
/// below). Tests — or an operator reproducing a failure — arm failpoints
/// either programmatically (failpoint::Enable / failpoint::ScopedFailpoint)
/// or through the CSJ_FAILPOINTS environment variable, which is parsed once
/// before the first failpoint evaluation:
///
///     CSJ_FAILPOINTS="output_file.append=every:100;output_file.close=always"
///
/// Trigger grammar (per failpoint):
///   * `always`        — fire on every evaluation
///   * `once`          — fire on the first evaluation only
///   * `every:N`       — fire on every Nth evaluation (N >= 1)
///   * `prob:P[:SEED]` — fire with probability P in [0,1], from a private
///                       deterministic RNG seeded with SEED (default 0);
///                       the sequence of decisions is reproducible
///   * `off`           — explicitly disarm
///
/// Compile-time kill switch: building with -DCSJ_NO_FAILPOINTS (CMake option
/// CSJ_FAILPOINTS=OFF) turns CSJ_FAILPOINT(name) into the literal `false`,
/// so release binaries carry zero overhead and no registry.

namespace csj::failpoint {

/// How an armed failpoint decides whether to fire.
struct Spec {
  enum class Mode {
    kOff,
    kAlways,
    kOnce,
    kEveryNth,
    kProbability,
  };

  Mode mode = Mode::kOff;
  uint64_t n = 1;            ///< period for kEveryNth (fires when hits % n == 0)
  double probability = 0.0;  ///< firing probability for kProbability
  uint64_t seed = 0;         ///< RNG seed for kProbability

  static Spec Always() { return Spec{Mode::kAlways, 1, 0.0, 0}; }
  static Spec Once() { return Spec{Mode::kOnce, 1, 0.0, 0}; }
  static Spec EveryNth(uint64_t n) { return Spec{Mode::kEveryNth, n, 0.0, 0}; }
  static Spec Probability(double p, uint64_t seed = 0) {
    return Spec{Mode::kProbability, 1, p, seed};
  }
};

/// Arms `name` with `spec`. Replaces any previous arming.
void Enable(const std::string& name, const Spec& spec);

/// Disarms `name`. No-op if it was not armed.
void Disable(const std::string& name);

/// Disarms everything and resets all hit/fire counters.
void DisableAll();

/// Parses one trigger ("always", "every:3", "prob:0.5:42", ...) and arms
/// `name` with it.
Status EnableFromString(const std::string& name, const std::string& trigger);

/// Parses a full configuration string ("a=always;b=every:3"). Used for the
/// CSJ_FAILPOINTS environment variable; also handy in tests.
Status Configure(const std::string& config);

/// Number of times `name` was evaluated (armed failpoints only).
uint64_t HitCount(const std::string& name);

/// Number of times `name` actually fired.
uint64_t FireCount(const std::string& name);

/// Names of all currently armed failpoints, sorted.
std::vector<std::string> ArmedNames();

/// RAII arming for tests: arms in the constructor, disarms in the destructor.
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string name, const Spec& spec) : name_(std::move(name)) {
    Enable(name_, spec);
  }
  ~ScopedFailpoint() { Disable(name_); }

  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

 private:
  std::string name_;
};

namespace internal {

/// Global count of armed failpoints; the macro's fast path. The atomic lives
/// behind a function so the header needs no global definition.
std::atomic<int>& ArmedCount();

/// Slow path: registry lookup + trigger evaluation. Only called while at
/// least one failpoint (possibly a different one) is armed.
bool ShouldFailSlow(const char* name);

inline bool Evaluate(const char* name) {
  return ArmedCount().load(std::memory_order_relaxed) > 0 &&
         ShouldFailSlow(name);
}

}  // namespace internal
}  // namespace csj::failpoint

#ifdef CSJ_NO_FAILPOINTS
#define CSJ_FAILPOINT(name) false
#else
/// True when the named failpoint is armed and its trigger fires.
#define CSJ_FAILPOINT(name) (::csj::failpoint::internal::Evaluate(name))
#endif

#endif  // CSJ_UTIL_FAILPOINT_H_

#ifndef CSJ_UTIL_TABLE_H_
#define CSJ_UTIL_TABLE_H_

#include <cstdio>
#include <string>
#include <vector>

#include "util/status.h"

/// \file
/// Aligned-text and CSV table emission for the benchmark harnesses.
///
/// Every experiment binary prints one table per paper figure/table through
/// this class so the rows that EXPERIMENTS.md quotes are reproducible
/// verbatim, and can additionally be dumped as CSV for plotting.

namespace csj {

/// Collects rows of strings and prints them with aligned columns.
class Table {
 public:
  /// \param title caption printed above the table.
  /// \param header column names.
  Table(std::string title, std::vector<std::string> header)
      : title_(std::move(title)), header_(std::move(header)) {}

  /// Appends one row; must have exactly as many cells as the header.
  void AddRow(std::vector<std::string> row);

  /// Renders the aligned table to a string.
  std::string ToString() const;

  /// Prints to stdout.
  void Print(std::FILE* out = stdout) const;

  /// Writes the table as a CSV file (header + rows).
  Status WriteCsv(const std::string& path) const;

  size_t num_rows() const { return rows_.size(); }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace csj

#endif  // CSJ_UTIL_TABLE_H_

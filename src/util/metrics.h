#ifndef CSJ_UTIL_METRICS_H_
#define CSJ_UTIL_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/timer.h"

/// \file
/// Process-wide runtime metrics: counters, gauges and latency histograms.
///
/// The engine's hot paths are instrumented with named metrics that are cheap
/// enough to leave on in production: every update is a relaxed atomic
/// operation on a pre-resolved pointer — no locks, no lookups. Call sites
/// use the macros, which resolve the registry entry once per site:
///
///     CSJ_METRIC_COUNT("join.node_visits", 1);
///     CSJ_METRIC_HIST("output_file.append_ns", nanos);
///     CSJ_METRIC_GAUGE_SET("window.live_groups", n);
///     { CSJ_METRIC_SCOPED_TIMER("parallel.replay_ns"); Replay(); }
///
/// A MetricsSnapshot captures every registered metric at a point in time and
/// serializes to text (one line per metric) or JSON (see
/// docs/OBSERVABILITY.md for the schema and the metric catalog). Histograms
/// are lock-free log2-bucketed (64-bit value range, ~2x relative error on
/// quantiles), good enough for the p50/p99 latency and size distributions
/// the bench records track.
///
/// Compile-time kill switch: building with -DCSJ_NO_METRICS (CMake option
/// CSJ_METRICS=OFF) turns the macros into no-ops, mirroring the failpoint
/// pattern — instrumented code carries zero overhead and registers nothing.
/// The registry API itself stays linked so snapshot consumers (csj_tool
/// --metrics, the bench recorder) still compile and see an empty registry.
///
/// Metrics are cumulative over the process lifetime; ResetAll() zeroes every
/// registered metric (tests and bench harnesses isolate measurements with
/// it). Registration never unregisters: pointers returned by Get* stay valid
/// until process exit.

namespace csj::metrics {

/// Monotonic event counter.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  const std::string name_;
  std::atomic<uint64_t> value_{0};
};

/// Last-value gauge (signed: occupancy deltas may go negative transiently).
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  const std::string name_;
  std::atomic<int64_t> value_{0};
};

/// Lock-free histogram over uint64 values (latencies in nanoseconds, sizes
/// in bytes, occupancies...). Values are bucketed by bit width — bucket i
/// holds values in [2^(i-1), 2^i) — so quantile estimates carry at most ~2x
/// relative error, while Record() is two relaxed adds plus two relaxed
/// min/max updates.
class Histogram {
 public:
  /// Bucket b holds values whose bit_width is b (value 0 -> bucket 0).
  static constexpr int kBuckets = 65;

  explicit Histogram(std::string name) : name_(std::move(name)) { Reset(); }

  void Record(uint64_t value);

  const std::string& name() const { return name_; }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  void Reset();

  /// Copies the bucket array (for snapshotting).
  std::array<uint64_t, kBuckets> BucketCounts() const;
  uint64_t min() const { return min_.load(std::memory_order_relaxed); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }

 private:
  const std::string name_;
  std::atomic<uint64_t> count_;
  std::atomic<uint64_t> sum_;
  std::atomic<uint64_t> min_;  ///< UINT64_MAX while empty
  std::atomic<uint64_t> max_;
  std::array<std::atomic<uint64_t>, kBuckets> buckets_;
};

/// Returns the metric registered under `name`, creating it on first use.
/// The returned pointer is valid forever. Registering the same name as two
/// different metric kinds aborts (it is a programming error).
Counter* GetCounter(const std::string& name);
Gauge* GetGauge(const std::string& name);
Histogram* GetHistogram(const std::string& name);

/// Zeroes every registered metric (the metrics stay registered).
void ResetAll();

/// Point-in-time copy of one histogram, plus derived statistics.
struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;  ///< 0 when empty
  uint64_t max = 0;
  std::array<uint64_t, Histogram::kBuckets> buckets{};

  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Quantile estimate (q in [0,1]) by linear interpolation inside the
  /// containing power-of-two bucket, clamped to the observed [min, max].
  double Quantile(double q) const;
  double P50() const { return Quantile(0.50); }
  double P99() const { return Quantile(0.99); }

  friend bool operator==(const HistogramSnapshot&,
                         const HistogramSnapshot&) = default;
};

/// Point-in-time copy of the whole registry, sorted by name within each
/// kind. Serializes to text and JSON; FromJson is the exact inverse of
/// ToJson (used by the round-trip tests and external consumers).
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// One line per metric; histograms render count/mean/p50/p99/max.
  std::string ToText() const;
  /// JSON document (schema in docs/OBSERVABILITY.md).
  json::Value ToJsonValue() const;
  std::string ToJson(bool pretty = true) const;
  static Result<MetricsSnapshot> FromJson(const std::string& text);
  static Result<MetricsSnapshot> FromJsonValue(const json::Value& value);

  friend bool operator==(const MetricsSnapshot&,
                         const MetricsSnapshot&) = default;
};

/// Captures every registered metric.
MetricsSnapshot Snapshot();

/// Attribution window over the process-wide registry: the metrics activity
/// between two snapshots. The registry is shared by every concurrent query,
/// so absolute values smear neighbors together; a begin/end delta is how a
/// server reports per-query `join.*`/`sink.*` numbers (still approximate
/// under concurrency — the window sees overlapping queries' traffic — but
/// exact when the window brackets a single query, e.g. one-shot tools).
///
/// Semantics per kind:
///  * counters — end minus begin. Counters are monotonic by contract; a
///    negative delta (a Reset raced the window) is clamped to 0 rather than
///    wrapping to ~2^64. Counters registered mid-window keep their end
///    value; zero deltas are dropped, so the result lists what *happened*.
///  * gauges — last-value semantics, a delta is meaningless: the end value
///    is reported as-is (dropped when also absent from `begin` and zero).
///  * histograms — count/sum/bucket deltas (negatives clamped like
///    counters); min/max cannot be diffed and report the end snapshot's
///    process-lifetime extremes. Empty-window histograms are dropped.
MetricsSnapshot DiffSnapshots(const MetricsSnapshot& begin,
                              const MetricsSnapshot& end);

/// RAII nanosecond timer recording into a histogram on destruction.
class ScopedTimerNs {
 public:
  explicit ScopedTimerNs(Histogram* histogram) : histogram_(histogram) {}
  ~ScopedTimerNs() {
    if (histogram_ != nullptr) histogram_->Record(timer_.ElapsedNanos());
  }

  ScopedTimerNs(const ScopedTimerNs&) = delete;
  ScopedTimerNs& operator=(const ScopedTimerNs&) = delete;

 private:
  Histogram* histogram_;
  WallTimer timer_;
};

}  // namespace csj::metrics

#ifdef CSJ_NO_METRICS

#define CSJ_METRIC_COUNT(name, n) \
  do {                            \
  } while (false)
#define CSJ_METRIC_HIST(name, value) \
  do {                               \
  } while (false)
#define CSJ_METRIC_GAUGE_SET(name, value) \
  do {                                    \
  } while (false)
#define CSJ_METRIC_SCOPED_TIMER(name) \
  do {                                \
  } while (false)

#else

/// Adds `n` to the named counter. The registry lookup runs once per call
/// site (function-local static); the increment is one relaxed atomic add.
#define CSJ_METRIC_COUNT(name, n)                                         \
  do {                                                                    \
    static ::csj::metrics::Counter* _csj_metric_counter =                 \
        ::csj::metrics::GetCounter(name);                                 \
    _csj_metric_counter->Increment(static_cast<uint64_t>(n));             \
  } while (false)

/// Records `value` into the named histogram.
#define CSJ_METRIC_HIST(name, value)                                      \
  do {                                                                    \
    static ::csj::metrics::Histogram* _csj_metric_histogram =             \
        ::csj::metrics::GetHistogram(name);                               \
    _csj_metric_histogram->Record(static_cast<uint64_t>(value));          \
  } while (false)

/// Sets the named gauge.
#define CSJ_METRIC_GAUGE_SET(name, value)                                 \
  do {                                                                    \
    static ::csj::metrics::Gauge* _csj_metric_gauge =                     \
        ::csj::metrics::GetGauge(name);                                   \
    _csj_metric_gauge->Set(static_cast<int64_t>(value));                  \
  } while (false)

/// Times the enclosing scope into the named histogram (nanoseconds).
#define CSJ_METRIC_SCOPED_TIMER(name)                                     \
  static ::csj::metrics::Histogram* _csj_metric_timer_hist =              \
      ::csj::metrics::GetHistogram(name);                                 \
  ::csj::metrics::ScopedTimerNs _csj_metric_scoped_timer(                 \
      _csj_metric_timer_hist)

#endif  // CSJ_NO_METRICS

#endif  // CSJ_UTIL_METRICS_H_

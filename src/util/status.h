#ifndef CSJ_UTIL_STATUS_H_
#define CSJ_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "util/check.h"

/// \file
/// Error propagation without exceptions: Status and Result<T>.
///
/// Runtime failures that a caller can reasonably handle (missing files,
/// malformed input) are reported through Status; programmer errors abort via
/// CSJ_CHECK. This mirrors the Arrow/RocksDB convention.

namespace csj {

/// Coarse error categories; the message carries the detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnavailable,        ///< transient failure; retrying may succeed (util/retry.h)
  kDeadlineExceeded,   ///< a caller-imposed deadline expired before completion
  kCancelled,          ///< cooperative cancellation (signal, operator stop)
  kResourceExhausted,  ///< a memory budget (util/exec_context.h) was exceeded
  kDataLoss,           ///< stored data is unreadable (CRC mismatch, truncation)
};

/// Returns a short human-readable name for a status code ("IO_ERROR", ...).
const char* StatusCodeName(StatusCode code);

/// Success-or-error value. Cheap to copy in the OK case.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CODE>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value or an error. Access to the value when not ok() aborts.
template <typename T>
class Result {
 public:
  /// Implicit from value and from Status, so `return value;` and
  /// `return Status::IoError(...)` both work in a Result-returning function.
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    CSJ_CHECK(!std::get<Status>(payload_).ok())
        << "Result constructed from OK status but no value";
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(payload_);
  }

  const T& value() const& {
    CSJ_CHECK(ok()) << status().ToString();
    return std::get<T>(payload_);
  }
  T& value() & {
    CSJ_CHECK(ok()) << status().ToString();
    return std::get<T>(payload_);
  }
  T&& value() && {
    CSJ_CHECK(ok()) << status().ToString();
    return std::move(std::get<T>(payload_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }

  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> payload_;
};

/// Propagates a non-OK Status to the caller.
#define CSJ_RETURN_IF_ERROR(expr)          \
  do {                                     \
    ::csj::Status _csj_status = (expr);    \
    if (!_csj_status.ok()) return _csj_status; \
  } while (false)

#define CSJ_STATUS_CONCAT_IMPL(a, b) a##b
#define CSJ_STATUS_CONCAT(a, b) CSJ_STATUS_CONCAT_IMPL(a, b)

/// Assigns the value of a Result expression to `lhs`, or returns its Status.
///
/// Usage note: the macro expands to multiple statements (it has to — `lhs`
/// may be a declaration like `auto rows`, which must land in the enclosing
/// scope). It therefore must be used as a full statement inside a braced
/// block, never as the unbraced body of an `if`/`for`/`while`:
///
///     if (cond) CSJ_ASSIGN_OR_RETURN(auto v, F());   // WRONG: won't compile
///     if (cond) { CSJ_ASSIGN_OR_RETURN(auto v, F()); ... }  // correct
///
/// The temporary is named with __COUNTER__, so every expansion gets a unique
/// variable. This is what makes the misuse above a guaranteed compile error:
/// with the previous __LINE__-based name, two expansions on one line shared
/// a name, and `X(); if (cond) X();` could silently bind the second
/// expansion's checks to the *first* expansion's result — compiling but
/// returning the wrong value. Unique names also allow two expansions on the
/// same line (e.g. in another macro).
#define CSJ_ASSIGN_OR_RETURN(lhs, expr) \
  CSJ_ASSIGN_OR_RETURN_IMPL(            \
      CSJ_STATUS_CONCAT(_csj_result_, __COUNTER__), lhs, expr)

#define CSJ_ASSIGN_OR_RETURN_IMPL(result, lhs, expr) \
  auto result = (expr);                              \
  if (!result.ok()) return result.status();          \
  lhs = std::move(result).value()

}  // namespace csj

#endif  // CSJ_UTIL_STATUS_H_

#include "util/random.h"

#include <cmath>

namespace csj {

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller transform on two uniforms; u1 is kept away from zero so that
  // log(u1) is finite.
  double u1 = UniformDouble();
  while (u1 <= 1e-300) u1 = UniformDouble();
  const double u2 = UniformDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

}  // namespace csj

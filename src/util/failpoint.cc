#include "util/failpoint.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

#include "util/format.h"

namespace csj::failpoint {
namespace {

/// Armed failpoint state. Counters live here so they reset with DisableAll.
struct Entry {
  Spec spec;
  uint64_t hits = 0;
  uint64_t fires = 0;
  uint64_t rng_state = 0;
};

struct Registry {
  std::mutex mu;
  std::map<std::string, Entry> entries;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

/// splitmix64: tiny, deterministic, decent-quality — exactly what a
/// reproducible probabilistic trigger needs.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

bool EvaluateLocked(Entry* entry) {
  ++entry->hits;
  bool fire = false;
  switch (entry->spec.mode) {
    case Spec::Mode::kOff:
      break;
    case Spec::Mode::kAlways:
      fire = true;
      break;
    case Spec::Mode::kOnce:
      fire = entry->hits == 1;
      break;
    case Spec::Mode::kEveryNth:
      fire = entry->hits % std::max<uint64_t>(entry->spec.n, 1) == 0;
      break;
    case Spec::Mode::kProbability: {
      const uint64_t raw = SplitMix64(&entry->rng_state);
      // Map the top 53 bits to [0,1).
      const double u =
          static_cast<double>(raw >> 11) * (1.0 / 9007199254740992.0);
      fire = u < entry->spec.probability;
      break;
    }
  }
  if (fire) ++entry->fires;
  return fire;
}

}  // namespace

namespace internal {

std::atomic<int>& ArmedCount() {
  static std::atomic<int> count{0};
  return count;
}

bool ShouldFailSlow(const char* name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.entries.find(name);
  if (it == registry.entries.end()) return false;
  return EvaluateLocked(&it->second);
}

}  // namespace internal

void Enable(const std::string& name, const Spec& spec) {
  if (spec.mode == Spec::Mode::kOff) {
    Disable(name);
    return;
  }
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto [it, inserted] = registry.entries.try_emplace(name);
  it->second = Entry{};
  it->second.spec = spec;
  it->second.rng_state = spec.seed;
  if (inserted) {
    internal::ArmedCount().fetch_add(1, std::memory_order_relaxed);
  }
}

void Disable(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  if (registry.entries.erase(name) > 0) {
    internal::ArmedCount().fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisableAll() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  internal::ArmedCount().fetch_sub(static_cast<int>(registry.entries.size()),
                                   std::memory_order_relaxed);
  registry.entries.clear();
}

Status EnableFromString(const std::string& name, const std::string& trigger) {
  if (name.empty()) return Status::InvalidArgument("empty failpoint name");
  Spec spec;
  if (trigger == "off") {
    Disable(name);
    return Status::OK();
  } else if (trigger == "always") {
    spec = Spec::Always();
  } else if (trigger == "once") {
    spec = Spec::Once();
  } else if (trigger.rfind("every:", 0) == 0) {
    char* end = nullptr;
    const unsigned long long n =
        std::strtoull(trigger.c_str() + 6, &end, 10);
    if (end == trigger.c_str() + 6 || *end != '\0' || n == 0) {
      return Status::InvalidArgument("bad every-N trigger: " + trigger);
    }
    spec = Spec::EveryNth(n);
  } else if (trigger.rfind("prob:", 0) == 0) {
    char* end = nullptr;
    const double p = std::strtod(trigger.c_str() + 5, &end);
    if (end == trigger.c_str() + 5 || p < 0.0 || p > 1.0) {
      return Status::InvalidArgument("bad probability trigger: " + trigger);
    }
    uint64_t seed = 0;
    if (*end == ':') {
      char* seed_end = nullptr;
      seed = std::strtoull(end + 1, &seed_end, 10);
      if (seed_end == end + 1 || *seed_end != '\0') {
        return Status::InvalidArgument("bad probability seed: " + trigger);
      }
    } else if (*end != '\0') {
      return Status::InvalidArgument("bad probability trigger: " + trigger);
    }
    spec = Spec::Probability(p, seed);
  } else {
    return Status::InvalidArgument("unknown failpoint trigger: " + trigger);
  }
  Enable(name, spec);
  return Status::OK();
}

Status Configure(const std::string& config) {
  size_t start = 0;
  while (start <= config.size()) {
    size_t end = config.find(';', start);
    if (end == std::string::npos) end = config.size();
    const std::string item = config.substr(start, end - start);
    start = end + 1;
    if (item.empty()) continue;
    const size_t eq = item.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("failpoint item missing '=': " + item);
    }
    CSJ_RETURN_IF_ERROR(
        EnableFromString(item.substr(0, eq), item.substr(eq + 1)));
  }
  return Status::OK();
}

uint64_t HitCount(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.entries.find(name);
  return it == registry.entries.end() ? 0 : it->second.hits;
}

uint64_t FireCount(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.entries.find(name);
  return it == registry.entries.end() ? 0 : it->second.fires;
}

std::vector<std::string> ArmedNames() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::vector<std::string> names;
  names.reserve(registry.entries.size());
  for (const auto& [name, entry] : registry.entries) names.push_back(name);
  return names;
}

namespace {

/// Arms failpoints from CSJ_FAILPOINTS before main() runs. A plain static
/// initializer (not lazy) so that evaluation sites never pay for an
/// "is the environment parsed yet?" check on their fast path.
const bool g_env_loaded = [] {
  const char* env = std::getenv("CSJ_FAILPOINTS");
  if (env != nullptr && *env != '\0') {
    const Status status = Configure(env);
    if (!status.ok()) {
      std::fprintf(stderr, "CSJ_FAILPOINTS ignored: %s\n",
                   status.ToString().c_str());
    }
  }
  return true;
}();

}  // namespace

}  // namespace csj::failpoint

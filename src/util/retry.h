#ifndef CSJ_UTIL_RETRY_H_
#define CSJ_UTIL_RETRY_H_

#include <chrono>
#include <cstdint>

#include "util/random.h"
#include "util/status.h"

/// \file
/// Bounded exponential-backoff retry for transient I/O failures.
///
/// A long-running external-memory join writes for minutes; a single EINTR or
/// momentary EAGAIN from the output device should not abort (and discard)
/// the whole run. Errors are split into two classes:
///
///  * *transient* — the operation may succeed if simply repeated
///    (StatusCode::kUnavailable, or an errno like EINTR/EAGAIN). These are
///    absorbed by a bounded exponential-backoff-with-jitter retry loop.
///  * *permanent* — ENOSPC, a checksum mismatch, a closed file. These
///    surface immediately through the usual sticky-Status channels.
///
/// The jitter is drawn from a private deterministic RNG so a retried run is
/// reproducible under test; `retry.*` metrics record every attempt, sleep
/// and exhaustion (docs/ROBUSTNESS.md, "Retry policy").

namespace csj {

/// Tunables for one retry loop. The defaults absorb sub-second blips while
/// keeping the worst case (all attempts exhausted) under ~200 ms of sleep.
struct RetryPolicy {
  /// Total tries including the first; 1 disables retrying.
  int max_attempts = 4;
  /// Sleep before the first retry, doubled per subsequent retry.
  double initial_backoff_ms = 2.0;
  /// Backoff ceiling.
  double max_backoff_ms = 100.0;
  /// Hard wall-clock cap over the whole loop, measured from the
  /// controller's construction; 0 disables it. Once exceeded,
  /// BackoffBeforeRetry refuses further attempts even when `max_attempts`
  /// remain — a caller with a deadline (the serve client, a governed run)
  /// cannot be held past it by a long string of transient failures.
  uint64_t max_elapsed_ms = 0;
  /// Seed of the deterministic jitter RNG.
  uint64_t jitter_seed = 0x9e3779b97f4a7c15ULL;
};

/// True for status codes the retry policy treats as transient.
inline bool IsTransient(const Status& status) {
  return status.code() == StatusCode::kUnavailable;
}

/// True for errno values worth retrying (interrupted or momentarily
/// saturated I/O); ENOSPC, EIO etc. are permanent.
bool IsTransientErrno(int err);

/// One retry loop's state: attempt counting, backoff computation, sleeping
/// and metric accounting. Typical shape:
///
///     RetryController retry(policy);
///     for (;;) {
///       Status s = TryOperation();
///       if (s.ok() || !IsTransient(s) || !retry.BackoffBeforeRetry()) break;
///     }
///
/// BackoffBeforeRetry() returns false once the attempt budget is exhausted
/// (recording `retry.exhausted`); otherwise it sleeps the jittered backoff
/// and returns true.
class RetryController {
 public:
  explicit RetryController(const RetryPolicy& policy);

  /// Call after a transient failure. Sleeps and returns true if another
  /// attempt is allowed; returns false (no sleep) when exhausted.
  bool BackoffBeforeRetry();

  /// Retries consumed so far (0 before the first transient failure).
  int retries() const { return retries_; }

 private:
  RetryPolicy policy_;
  Rng jitter_;
  int retries_ = 0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace csj

#endif  // CSJ_UTIL_RETRY_H_

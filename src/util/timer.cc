#include "util/timer.h"

// WallTimer and StopwatchAccumulator are fully inline; this translation unit
// exists so the header gets compiled standalone at least once.

#include "util/exec_context.h"

#include "util/check.h"
#include "util/format.h"
#include "util/metrics.h"

namespace csj {

bool MemoryBudget::TryReserve(uint64_t bytes) {
  if (bytes == 0) return true;
  // Commit locally first, then ascend. On a denial anywhere the partial
  // commits are rolled back, so a failed reservation charges nothing.
  uint64_t used = used_.load(std::memory_order_relaxed);
  while (true) {
    if (limit_ != 0 && used + bytes > limit_) {
      denials_.fetch_add(1, std::memory_order_relaxed);
      CSJ_METRIC_COUNT("resource.denials", 1);
      return false;
    }
    if (used_.compare_exchange_weak(used, used + bytes,
                                    std::memory_order_relaxed)) {
      break;
    }
  }
  if (parent_ != nullptr && !parent_->TryReserve(bytes)) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
    denials_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // Peak tracking: monotonic max, racy-but-convergent under contention. The
  // gauge is only touched when the peak advances, so steady-state churn
  // (e.g. a full CSJ(g) window admitting and evicting around a plateau)
  // costs two relaxed loads here, not a metric write per reservation.
  const uint64_t now_used = used + bytes;
  uint64_t peak = peak_.load(std::memory_order_relaxed);
  if (now_used > peak) {
    while (now_used > peak &&
           !peak_.compare_exchange_weak(peak, now_used,
                                        std::memory_order_relaxed)) {
    }
#ifndef CSJ_NO_METRICS
    // Process-wide high-water mark, advance-only: with one gauge shared by
    // every budget, a plain Set would let a small query's peak overwrite a
    // bigger concurrent one's and the gauge would regress. Per-budget peaks
    // stay exact through peak().
    static metrics::Gauge* peak_gauge =
        metrics::GetGauge("resource.peak_bytes");
    const int64_t observed =
        static_cast<int64_t>(peak_.load(std::memory_order_relaxed));
    if (peak_gauge->value() < observed) peak_gauge->Set(observed);
#endif
  }
  return true;
}

void MemoryBudget::Release(uint64_t bytes) {
  if (bytes == 0) return;
  const uint64_t before = used_.fetch_sub(bytes, std::memory_order_relaxed);
  CSJ_CHECK(before >= bytes) << "MemoryBudget::Release of " << bytes
                             << " bytes exceeds the " << before
                             << " bytes reserved";
  if (parent_ != nullptr) parent_->Release(bytes);
}

bool MemoryBudget::UnderPressure(double fraction) const {
  if (limit_ != 0 &&
      static_cast<double>(used()) >= fraction * static_cast<double>(limit_)) {
    return true;
  }
  return parent_ != nullptr && parent_->UnderPressure(fraction);
}

uint64_t MemoryBudget::Available() const {
  const uint64_t local =
      limit_ == 0 ? UINT64_MAX
                  : (limit_ > used() ? limit_ - used() : 0);
  if (parent_ == nullptr) return local;
  const uint64_t above = parent_->Available();
  return local < above ? local : above;
}

bool ScopedCharge::Acquire(MemoryBudget* budget, uint64_t bytes) {
  Release();
  if (budget == nullptr) return true;
  if (!budget->TryReserve(bytes)) return false;
  budget_ = budget;
  bytes_ = bytes;
  return true;
}

bool ScopedCharge::Resize(uint64_t new_bytes) {
  if (budget_ == nullptr) return true;
  if (new_bytes > bytes_) {
    if (!budget_->TryReserve(new_bytes - bytes_)) return false;
  } else if (new_bytes < bytes_) {
    budget_->Release(bytes_ - new_bytes);
  }
  bytes_ = new_bytes;
  return true;
}

void ScopedCharge::Release() {
  if (budget_ != nullptr && bytes_ > 0) budget_->Release(bytes_);
  budget_ = nullptr;
  bytes_ = 0;
}

void ExecContext::SetDeadlineAfterMs(uint64_t ms) {
  if (ms == 0) return;
  SetDeadline(std::chrono::steady_clock::now() +
              std::chrono::milliseconds(ms));
}

void ExecContext::SetDeadline(std::chrono::steady_clock::time_point deadline) {
  has_deadline_ = true;
  deadline_ = deadline;
}

void ExecContext::Trip(Status status) const {
  if (status.ok()) return;
  std::lock_guard<std::mutex> lock(status_mutex_);
  if (stopped_.load(std::memory_order_relaxed)) return;  // first error wins
  status_ = std::move(status);
  // Release ordering so a thread that observes stopped_ == true via
  // ShouldStop() and then takes the mutex sees the status write.
  stopped_.store(true, std::memory_order_release);
}

Status ExecContext::status() const {
  if (stopped_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(status_mutex_);
    return status_;
  }
  if (parent_ != nullptr) return parent_->status();
  return Status::OK();
}

bool ExecContext::TryCharge(uint64_t bytes, const char* what) const {
  MemoryBudget* budget = memory_budget();
  if (budget == nullptr || budget->TryReserve(bytes)) return true;
  Trip(Status::ResourceExhausted(
      StrFormat("memory budget exhausted reserving %llu bytes for %s "
                "(used %llu of %llu)",
                static_cast<unsigned long long>(bytes), what,
                static_cast<unsigned long long>(budget->used()),
                static_cast<unsigned long long>(budget->limit()))));
  return false;
}

}  // namespace csj

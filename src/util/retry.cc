#include "util/retry.h"

#include <cerrno>

#include <chrono>
#include <thread>

#include "util/metrics.h"

namespace csj {

bool IsTransientErrno(int err) {
  switch (err) {
    case EINTR:
    case EAGAIN:
#if defined(EWOULDBLOCK) && EWOULDBLOCK != EAGAIN
    case EWOULDBLOCK:
#endif
    case EBUSY:
    case ENOBUFS:
      return true;
    default:
      return false;
  }
}

RetryController::RetryController(const RetryPolicy& policy)
    : policy_(policy),
      jitter_(policy.jitter_seed),
      start_(std::chrono::steady_clock::now()) {}

bool RetryController::BackoffBeforeRetry() {
  CSJ_METRIC_COUNT("retry.transient_errors", 1);
  if (retries_ + 1 >= policy_.max_attempts) {
    CSJ_METRIC_COUNT("retry.exhausted", 1);
    return false;
  }
  if (policy_.max_elapsed_ms != 0) {
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start_)
            .count();
    if (elapsed >= 0 &&
        static_cast<uint64_t>(elapsed) >= policy_.max_elapsed_ms) {
      CSJ_METRIC_COUNT("retry.exhausted", 1);
      return false;
    }
  }
  // Full jitter: sleep uniform in [0, backoff], with backoff doubling per
  // retry up to the ceiling. Randomizing the whole interval (not a fraction)
  // is what de-synchronizes retry herds.
  double backoff_ms = policy_.initial_backoff_ms;
  for (int i = 0; i < retries_; ++i) backoff_ms *= 2.0;
  if (backoff_ms > policy_.max_backoff_ms) backoff_ms = policy_.max_backoff_ms;
  const double sleep_ms = jitter_.UniformDouble(0.0, backoff_ms);
  ++retries_;
  CSJ_METRIC_COUNT("retry.attempts", 1);
  CSJ_METRIC_HIST("retry.backoff_us",
                  static_cast<uint64_t>(sleep_ms * 1000.0));
  if (sleep_ms > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(sleep_ms));
  }
  return true;
}

}  // namespace csj

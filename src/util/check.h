#ifndef CSJ_UTIL_CHECK_H_
#define CSJ_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

/// \file
/// Fatal assertion macros for programmer errors.
///
/// The library does not use exceptions; invariant violations abort with a
/// message that names the failing condition and source location. CSJ_CHECK is
/// always on; CSJ_DCHECK compiles away in NDEBUG builds (use it on hot paths).

namespace csj::internal {

/// Stream-style message collector that aborts on destruction.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << condition;
  }

  [[noreturn]] ~CheckFailure() {
    std::string message = stream_.str();
    std::fprintf(stderr, "%s\n", message.c_str());
    std::fflush(stderr);
    std::abort();
  }

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace csj::internal

#define CSJ_CHECK(condition)                                             \
  if (condition) {                                                       \
  } else                                                                 \
    ::csj::internal::CheckFailure(__FILE__, __LINE__, #condition) << ": "

#define CSJ_CHECK_EQ(a, b) CSJ_CHECK((a) == (b))
#define CSJ_CHECK_NE(a, b) CSJ_CHECK((a) != (b))
#define CSJ_CHECK_LT(a, b) CSJ_CHECK((a) < (b))
#define CSJ_CHECK_LE(a, b) CSJ_CHECK((a) <= (b))
#define CSJ_CHECK_GT(a, b) CSJ_CHECK((a) > (b))
#define CSJ_CHECK_GE(a, b) CSJ_CHECK((a) >= (b))

#ifdef NDEBUG
#define CSJ_DCHECK(condition) \
  if (true) {                 \
  } else                      \
    ::csj::internal::CheckFailure(__FILE__, __LINE__, #condition)
#else
#define CSJ_DCHECK(condition) CSJ_CHECK(condition)
#endif

#endif  // CSJ_UTIL_CHECK_H_

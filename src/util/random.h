#ifndef CSJ_UTIL_RANDOM_H_
#define CSJ_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

#include "util/check.h"

/// \file
/// Deterministic pseudo-random number generation.
///
/// Every dataset generator and randomized test in this repository draws from
/// Rng (xoshiro256++ seeded via SplitMix64), so a (generator, seed) pair fully
/// identifies a dataset and all experiments are reproducible bit-for-bit.

namespace csj {

/// SplitMix64 step; used to expand a single seed into xoshiro state and as a
/// cheap standalone mixer.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ generator. Small, fast, and good enough for workload
/// generation; not cryptographic.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eedULL) { Reseed(seed); }

  /// Re-initializes the state from a single 64-bit seed.
  void Reseed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(sm);
  }

  /// Next raw 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * UniformDouble();
  }

  /// Uniform integer in [0, bound). bound must be positive.
  uint64_t UniformInt(uint64_t bound) {
    CSJ_DCHECK(bound > 0);
    // Lemire's multiply-shift rejection method (unbiased).
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t low = static_cast<uint64_t>(m);
    if (low < bound) {
      uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    CSJ_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    UniformInt(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Standard normal via Box-Muller (cached second value).
  double Gaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// Bernoulli(p).
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = UniformInt(static_cast<uint64_t>(i));
      std::swap(items[i - 1], items[j]);
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace csj

#endif  // CSJ_UTIL_RANDOM_H_

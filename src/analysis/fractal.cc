#include "analysis/fractal.h"

#include <cmath>

namespace csj {

double PowerLawFit::Predict(double eps) const {
  return std::exp2(intercept + slope * std::log2(eps));
}

PowerLawFit FitPowerLaw(const std::vector<ScalingPoint>& points) {
  PowerLawFit fit;
  const size_t n = points.size();
  if (n < 2) return fit;

  double sum_x = 0.0, sum_y = 0.0;
  for (const auto& p : points) {
    sum_x += p.log2_eps;
    sum_y += p.log2_value;
  }
  const double mean_x = sum_x / static_cast<double>(n);
  const double mean_y = sum_y / static_cast<double>(n);

  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (const auto& p : points) {
    const double dx = p.log2_eps - mean_x;
    const double dy = p.log2_value - mean_y;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx <= 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = mean_y - fit.slope * mean_x;
  fit.r_squared = syy <= 0.0 ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

uint64_t PredictLinkCount(const PowerLawFit& correlation_fit, size_t n,
                          double eps) {
  // The fit models average neighbors-per-point; each link is counted from
  // both endpoints, so links = n * avg / 2.
  const double avg = correlation_fit.Predict(eps);
  const double links = 0.5 * static_cast<double>(n) * avg;
  if (links <= 0.0) return 0;
  return static_cast<uint64_t>(links);
}

}  // namespace csj

#ifndef CSJ_ANALYSIS_EPSILON_H_
#define CSJ_ANALYSIS_EPSILON_H_

#include <algorithm>
#include <vector>

#include "geom/point.h"
#include "util/check.h"

/// \file
/// Query-range (epsilon) suggestion.
///
/// Picking eps is the practical pain point of similarity joins: too small
/// returns nothing, too large explodes. The standard heuristic (DBSCAN's
/// k-distance plot) transfers directly: for a sample of points, compute the
/// distance to the k-th nearest neighbor; a percentile of that distribution
/// is an eps at which roughly that share of points has >= k join partners.
/// Combine with analysis/fractal.h's PredictLinkCount to check the implied
/// output size before running anything.

namespace csj {

/// Result of a k-distance scan.
struct EpsilonSuggestion {
  double epsilon = 0.0;      ///< suggested query range
  double median_kdist = 0.0; ///< median k-NN distance of the sample
  double p90_kdist = 0.0;    ///< 90th percentile
  size_t sample_size = 0;
};

/// Suggests eps from the k-distance distribution of a sample.
///
/// \param tree any index with NearestNeighbors(point, k) (RTree, RStarTree,
///        MTree).
/// \param entries the indexed data (anchors are sampled from it).
/// \param k desired minimum number of join partners per matched point.
/// \param percentile which quantile of the k-distance distribution to
///        return as the suggestion (0.5 = median; higher = more inclusive).
/// \param max_sample anchors examined (evenly strided).
template <typename Tree, int D>
EpsilonSuggestion SuggestEpsilon(const Tree& tree,
                                 const std::vector<Entry<D>>& entries,
                                 size_t k, double percentile = 0.5,
                                 size_t max_sample = 500) {
  CSJ_CHECK(k >= 1);
  CSJ_CHECK(percentile > 0.0 && percentile <= 1.0);
  EpsilonSuggestion suggestion;
  if (entries.size() < k + 1) return suggestion;

  std::vector<double> kdists;
  const size_t stride = std::max<size_t>(1, entries.size() / max_sample);
  for (size_t i = 0; i < entries.size(); i += stride) {
    // k+1 nearest: the first is the anchor itself (distance 0).
    const auto neighbors = tree.NearestNeighbors(entries[i].point, k + 1);
    if (neighbors.size() < k + 1) continue;
    kdists.push_back(Distance(entries[i].point, neighbors[k].point));
  }
  if (kdists.empty()) return suggestion;
  std::sort(kdists.begin(), kdists.end());

  auto quantile = [&](double q) {
    const size_t index = std::min(
        kdists.size() - 1,
        static_cast<size_t>(q * static_cast<double>(kdists.size())));
    return kdists[index];
  };
  suggestion.sample_size = kdists.size();
  suggestion.median_kdist = quantile(0.5);
  suggestion.p90_kdist = quantile(0.9);
  suggestion.epsilon = quantile(percentile);
  return suggestion;
}

}  // namespace csj

#endif  // CSJ_ANALYSIS_EPSILON_H_

#ifndef CSJ_ANALYSIS_FRACTAL_H_
#define CSJ_ANALYSIS_FRACTAL_H_

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geom/hilbert.h"
#include "geom/point.h"
#include "util/status.h"

/// \file
/// Intrinsic ("fractal") dimensionality analysis — the paper's stated future
/// work: "A promising future research problem is the analysis of the
/// response time of the methods as a function of the query range eps, and
/// also as a function of the intrinsic ('fractal') dimensionality of the
/// input data set."
///
/// Two classic estimators over point sets:
///  * box-counting dimension D0: slope of log N(r) vs log(1/r), where N(r)
///    is the number of occupied grid cells of side r;
///  * correlation dimension D2: slope of log PC(eps) vs log eps, where
///    PC(eps) is the fraction of point pairs within eps ("pair count" /
///    correlation integral).
///
/// D2 is the one that matters for similarity joins: the number of
/// qualifying links scales as links(eps) ~ C * eps^D2 on self-similar data,
/// so a D2 fit from a small sample predicts the output explosion — exactly
/// the relationship bench_exp9_fractal measures end to end, and what the
/// selectivity estimator below exposes as an API.

namespace csj {

/// One (log_eps, log_value) sample of an empirical scaling law.
struct ScalingPoint {
  double log2_eps = 0.0;
  double log2_value = 0.0;
};

/// Least-squares line fit through scaling points: value ~ 2^(intercept) *
/// eps^slope. `slope` is the dimension estimate.
struct PowerLawFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;  ///< goodness of fit in log-log space

  /// Evaluates the fitted law at eps.
  double Predict(double eps) const;
};

/// Fits a power law to (eps, value) samples in log2-log2 space.
PowerLawFit FitPowerLaw(const std::vector<ScalingPoint>& points);

/// Box-counting dimension D0 over grid sides 2^-level for level in
/// [min_level, max_level] (first three coordinates are used for D > 3).
///
/// Cell occupancy at every level is read off ONE sorted array of
/// hierarchical space-filling-curve keys (Hilbert for 2-D, Morton
/// otherwise — the same curves index/bulk_load.h packs with): the level-L
/// cell of a point is a prefix of its finest-level key, so the number of
/// occupied cells at level L is the number of distinct prefixes — no
/// per-level re-sort.
///
/// Degenerate inputs (fewer than two points, or every point in one
/// finest-level cell — i.e. zero spread at the analysis resolution) return
/// InvalidArgument instead of a silent dimension-0 fit.
template <int D>
Result<PowerLawFit> BoxCountingDimension(const std::vector<Point<D>>& points,
                                         int min_level = 2,
                                         int max_level = 7);

/// Correlation-sum samples: for each eps, the average number of neighbors
/// within eps over a sample of anchors (computed exactly with a grid, or by
/// sampling `max_anchors` anchors for big inputs).
template <int D>
std::vector<ScalingPoint> CorrelationSamples(
    const std::vector<Point<D>>& points, const std::vector<double>& epsilons,
    size_t max_anchors = 1000);

/// Correlation dimension D2: slope of the correlation sum over the given
/// eps ladder (log-spaced; defaults to 2^-8 .. 2^-3).
template <int D>
PowerLawFit CorrelationDimension(const std::vector<Point<D>>& points);

/// Join-selectivity estimate derived from the correlation fit: predicted
/// number of links (qualifying pairs) at query range eps. The fit must come
/// from CorrelationSamples over the same data.
uint64_t PredictLinkCount(const PowerLawFit& correlation_fit, size_t n,
                          double eps);

// --- Template implementations -------------------------------------------------

template <int D>
Result<PowerLawFit> BoxCountingDimension(const std::vector<Point<D>>& points,
                                         int min_level, int max_level) {
  constexpr int kDims = D < 3 ? D : 3;
  if (points.size() < 2) {
    return Status::InvalidArgument(
        "box-counting needs at least two points");
  }
  if (min_level < 0 || min_level > max_level || max_level > 20) {
    return Status::InvalidArgument(
        "box-counting levels must satisfy 0 <= min <= max <= 20");
  }
  // One hierarchical curve key per point at the finest level. A level-L
  // cell is the key's leading kDims*L bits (quadrant recursion for
  // Hilbert, bit interleaving for Morton), and truncating the quantized
  // coordinate is exactly the coarser grid's cell index, so the distinct
  // prefix count below equals the per-level cell count the naive rebuild
  // produced.
  const int grid = 1 << max_level;
  std::vector<uint64_t> keys;
  keys.reserve(points.size());
  std::array<uint32_t, static_cast<size_t>(kDims)> c{};
  for (const auto& p : points) {
    for (int d = 0; d < kDims; ++d) {
      auto q = static_cast<int64_t>(p[d] * grid);
      if (q >= grid) q = grid - 1;
      if (q < 0) q = 0;
      c[static_cast<size_t>(d)] = static_cast<uint32_t>(q);
    }
    keys.push_back(D == 2 ? HilbertIndex2D(max_level, c[0], c[1 % kDims])
                          : MortonIndex(c.data(), kDims, max_level));
  }
  std::sort(keys.begin(), keys.end());
  if (keys.front() == keys.back()) {
    return Status::InvalidArgument(
        "degenerate input: every point falls in one finest-level cell "
        "(zero spread at the analysis resolution)");
  }
  std::vector<ScalingPoint> samples;
  for (int level = min_level; level <= max_level; ++level) {
    const int shift = kDims * (max_level - level);
    uint64_t occupied = 1;
    for (size_t i = 1; i < keys.size(); ++i) {
      occupied += (keys[i] >> shift) != (keys[i - 1] >> shift);
    }
    // N(r) ~ r^-D0 with r = 2^-level, so log2 N vs level has slope D0;
    // store as (log2 r, log2 N) to reuse FitPowerLaw (slope = -D0).
    samples.push_back({-static_cast<double>(level),
                       std::log2(static_cast<double>(occupied))});
  }
  PowerLawFit fit = FitPowerLaw(samples);
  fit.slope = -fit.slope;  // report the dimension positively
  return fit;
}

namespace fractal_internal {
/// Exact average neighbor count within eps around sampled anchors, via a
/// uniform grid of cell side eps (checks the 3^D neighborhood).
template <int D>
double AverageNeighbors(const std::vector<Point<D>>& points, double eps,
                        size_t max_anchors);
}  // namespace fractal_internal

template <int D>
std::vector<ScalingPoint> CorrelationSamples(
    const std::vector<Point<D>>& points, const std::vector<double>& epsilons,
    size_t max_anchors) {
  std::vector<ScalingPoint> samples;
  for (double eps : epsilons) {
    const double avg =
        fractal_internal::AverageNeighbors(points, eps, max_anchors);
    if (avg <= 0.0) continue;  // below resolution; no information
    samples.push_back({std::log2(eps), std::log2(avg)});
  }
  return samples;
}

template <int D>
PowerLawFit CorrelationDimension(const std::vector<Point<D>>& points) {
  std::vector<double> epsilons;
  for (int e = -8; e <= -3; ++e) epsilons.push_back(std::ldexp(1.0, e));
  return FitPowerLaw(CorrelationSamples(points, epsilons));
}

namespace fractal_internal {

template <int D>
double AverageNeighbors(const std::vector<Point<D>>& points, double eps,
                        size_t max_anchors) {
  if (points.size() < 2) return 0.0;
  // Hash points into cells of side eps.
  struct CellHash {
    size_t operator()(uint64_t key) const {
      uint64_t x = key;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      return static_cast<size_t>(x ^ (x >> 31));
    }
  };
  auto cell_key = [&](const Point<D>& p) {
    uint64_t key = 0;
    for (int d = 0; d < D; ++d) {
      const auto c = static_cast<int64_t>(std::floor(p[d] / eps)) + (1 << 20);
      key = key * 0x9e3779b1ULL + static_cast<uint64_t>(c);
    }
    return key;
  };
  // For exact neighborhood enumeration we need the cell coordinates, not a
  // mixed hash; store points bucketed by the exact coordinate tuple.
  std::unordered_map<uint64_t, std::vector<uint32_t>, CellHash> buckets;
  std::vector<std::array<int64_t, D>> coords(points.size());
  auto tuple_key = [](const std::array<int64_t, D>& c) {
    uint64_t key = 1469598103934665603ULL;
    for (int d = 0; d < D; ++d) {
      key ^= static_cast<uint64_t>(c[d]);
      key *= 1099511628211ULL;
    }
    return key;
  };
  (void)cell_key;
  for (size_t i = 0; i < points.size(); ++i) {
    for (int d = 0; d < D; ++d) {
      coords[i][d] = static_cast<int64_t>(std::floor(points[i][d] / eps));
    }
    buckets[tuple_key(coords[i])].push_back(static_cast<uint32_t>(i));
  }

  const size_t stride = std::max<size_t>(1, points.size() / max_anchors);
  const double eps2 = eps * eps;
  uint64_t neighbor_sum = 0;
  size_t anchors = 0;
  std::array<int64_t, D> probe;
  for (size_t i = 0; i < points.size(); i += stride) {
    ++anchors;
    // Enumerate the 3^D neighboring cells.
    int offsets[D] = {};
    for (int d = 0; d < D; ++d) offsets[d] = -1;
    while (true) {
      for (int d = 0; d < D; ++d) probe[d] = coords[i][d] + offsets[d];
      auto it = buckets.find(tuple_key(probe));
      if (it != buckets.end()) {
        for (uint32_t j : it->second) {
          // Guard against hash collisions with an exact cell check.
          if (coords[j] != probe) continue;
          if (j == i) continue;
          if (SquaredDistance(points[i], points[j]) <= eps2) ++neighbor_sum;
        }
      }
      int d = 0;
      while (d < D && offsets[d] == 1) {
        offsets[d] = -1;
        ++d;
      }
      if (d == D) break;
      ++offsets[d];
    }
  }
  return static_cast<double>(neighbor_sum) / static_cast<double>(anchors);
}

}  // namespace fractal_internal

}  // namespace csj

#endif  // CSJ_ANALYSIS_FRACTAL_H_
